package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/retry"
)

// Client is the request side of the serving wire protocol, used by
// cmd/loadgen and the throughput benchmark. The uplink retries with
// exponential backoff and full jitter: transport errors, 5xx and 429
// (backpressure) are retryable; 4xx are permanent. HTTPClient's
// Transport is the decoration point for internal/faults injectors —
// wrap it with a faulty RoundTripper and the retry machinery absorbs
// the injected failures exactly as the PR 1 uplink does.
//
// Every /classify batch carries a stable X-Request-Id, held constant
// across retries of that batch, so a server with a verdict ledger
// deduplicates retransmits: a retry whose original attempt actually
// landed (the response was lost, not the request) replays the
// journaled verdicts instead of classifying twice.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient when nil.
	HTTPClient *http.Client
	// Retry is the uplink retry policy; the zero value selects the
	// package defaults (5 attempts, 50ms initial backoff).
	Retry retry.Policy
	// RequestIDPrefix namespaces generated request IDs (e.g. one prefix
	// per loadgen worker) so independent clients never collide in the
	// server's dedup ledger. Default "req".
	RequestIDPrefix string
	// Timeout, when set, is sent as the per-request deadline header so
	// the server can shed work this client has already given up on.
	Timeout time.Duration
	// Binary selects the compact binary wire format for /classify and
	// /result (Content-Type negotiation; see wire.go). Retransmit safety
	// is unaffected — the server journals one canonical form — so a
	// client may flip this between a transmit and its retransmit.
	Binary bool

	seq atomic.Uint64

	// Deferred counts 202 journal-and-defer responses this client
	// resolved by polling GET /result; Deduped counts batches whose
	// verdicts came from the server's ledger (header-signaled).
	Deferred atomic.Uint64
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// idChecksum is the content-hash table for request IDs: CRC-32C runs
// hardware-accelerated at memory speed, where a byte-at-a-time FNV over
// a full batch body cost ~100µs of dependent multiplies per request.
var idChecksum = crc32.MakeTable(crc32.Castagnoli)

// nextRequestID derives a stable per-batch ID: prefix, client-local
// sequence, and a content checksum so the ID is also self-describing in
// journal dumps. Uniqueness comes from the sequence number; the
// checksum only ties the ID to the batch bytes for a human reading a
// journal dump, so a 32-bit CRC is plenty.
func (c *Client) nextRequestID(body []byte) string {
	prefix := c.RequestIDPrefix
	if prefix == "" {
		prefix = "req"
	}
	return fmt.Sprintf("%s-%06d-%08x", prefix, c.seq.Add(1), crc32.Checksum(body, idChecksum))
}

// post sends body and returns the response body, retrying per policy.
// The same requestID header rides every attempt. A 202 means the
// server journaled the batch and deferred classification; the caller
// polls /result.
func (c *Client) post(ctx context.Context, path string, body []byte, requestID, contentType string) ([]byte, bool, error) {
	var out []byte
	deferred := false
	err := retry.Do(ctx, c.Retry, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		if requestID != "" {
			req.Header.Set(RequestIDHeader, requestID)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.Timeout > 0 {
			req.Header.Set(TimeoutHeader, fmt.Sprintf("%d", c.Timeout.Milliseconds()))
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			out = data
			return nil
		case resp.StatusCode == http.StatusAccepted:
			deferred = true
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			// Backpressure or server-side trouble: retry after backoff.
			return fmt.Errorf("serve: %s: %s", path, resp.Status)
		default:
			return retry.Permanent(fmt.Errorf("serve: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data)))
		}
	})
	return out, deferred, err
}

// parseVerdicts decodes a line-JSON verdict stream. The body converts
// to one string and canonical lines (the exact shape appendVerdictLine
// emits) decode by substring slicing; anything else falls back to
// encoding/json per line.
func parseVerdicts(data []byte) ([]VerdictRecord, error) {
	s := string(data)
	verdicts := make([]VerdictRecord, 0, strings.Count(s, "\n")+1)
	for len(s) > 0 {
		line := s
		if nl := strings.IndexByte(s, '\n'); nl >= 0 {
			line, s = s[:nl], s[nl+1:]
		} else {
			s = ""
		}
		line = strings.TrimSuffix(line, "\r")
		if len(line) == 0 {
			continue
		}
		if v, ok := parseVerdictLine(line); ok {
			verdicts = append(verdicts, v)
			continue
		}
		var v VerdictRecord
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			return nil, fmt.Errorf("serve: verdict line: %w", err)
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}

// Classify streams a batch of events to /classify and parses the
// verdict records, which arrive in input order. A generated request ID
// (stable across retries) makes the batch retransmit-safe against a
// ledger-backed server.
func (c *Client) Classify(ctx context.Context, events []dataset.DownloadEvent) ([]VerdictRecord, error) {
	body, err := c.marshalEvents(events)
	if err != nil {
		return nil, err
	}
	return c.classify(ctx, c.nextRequestID(body), body, len(events))
}

// ClassifyWithID is Classify with a caller-chosen request ID — the
// handle for exactly-once delivery across client restarts: resending a
// batch under its original ID after a crash (of either side) yields
// the original verdicts, never a second accounting.
func (c *Client) ClassifyWithID(ctx context.Context, id string, events []dataset.DownloadEvent) ([]VerdictRecord, error) {
	body, err := c.marshalEvents(events)
	if err != nil {
		return nil, err
	}
	return c.classify(ctx, id, body, len(events))
}

func (c *Client) marshalEvents(events []dataset.DownloadEvent) ([]byte, error) {
	if c.Binary {
		size := 8
		for i := range events {
			size += minBinaryEvent + len(events[i].File) + len(events[i].Machine) +
				len(events[i].Process) + len(events[i].URL) + len(events[i].Domain) + 4
		}
		return appendBinaryEvents(make([]byte, 0, size), events), nil
	}
	return marshalEvents(events)
}

func marshalEvents(events []dataset.DownloadEvent) ([]byte, error) {
	size := 0
	for i := range events {
		size += 128 + len(events[i].File) + len(events[i].Machine) +
			len(events[i].Process) + len(events[i].URL) + len(events[i].Domain)
	}
	body := make([]byte, 0, size)
	for i := range events {
		line, err := export.AppendEventLine(body, &events[i])
		if err != nil {
			return nil, err
		}
		body = append(line, '\n')
	}
	return body, nil
}

func (c *Client) classify(ctx context.Context, id string, body []byte, n int) ([]VerdictRecord, error) {
	ct := ""
	if c.Binary {
		ct = ContentTypeBinaryEvents
	}
	data, deferred, err := c.post(ctx, "/classify", body, id, ct)
	if err != nil {
		return nil, err
	}
	if deferred {
		c.Deferred.Add(1)
		data, err = c.pollResult(ctx, id)
		if err != nil {
			return nil, err
		}
	}
	var verdicts []VerdictRecord
	if c.Binary {
		verdicts, err = decodeBinaryVerdicts(string(data))
	} else {
		verdicts, err = parseVerdicts(data)
	}
	if err != nil {
		return nil, err
	}
	if len(verdicts) != n {
		return nil, fmt.Errorf("serve: sent %d events, got %d verdicts", n, len(verdicts))
	}
	return verdicts, nil
}

// pollResult fetches the verdicts of a journaled-and-deferred batch,
// backing off while the background worker catches up (204).
func (c *Client) pollResult(ctx context.Context, id string) ([]byte, error) {
	var out []byte
	pol := c.Retry
	if pol.MaxAttempts == 0 {
		pol.MaxAttempts = 50
	} else if pol.MaxAttempts > 0 {
		pol.MaxAttempts *= 10
	}
	err := retry.Do(ctx, pol, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/result?id="+id, nil)
		if err != nil {
			return retry.Permanent(err)
		}
		if c.Binary {
			req.Header.Set("Accept", ContentTypeBinaryVerdicts)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			out = data
			return nil
		case http.StatusNoContent:
			return fmt.Errorf("serve: result %s still pending", id)
		default:
			return retry.Permanent(fmt.Errorf("serve: /result: %s: %s", resp.Status, bytes.TrimSpace(data)))
		}
	})
	return out, err
}

// Sentinel results of FetchResult, matched with errors.Is.
var (
	// ErrResultPending means the batch is journaled but not yet
	// classified; poll again.
	ErrResultPending = errors.New("serve: result still pending")
	// ErrUnknownRequest means this replica's ledger has never seen the
	// request ID — a failover caller should try the next candidate.
	ErrUnknownRequest = errors.New("serve: unknown request id")
)

// ClassifyRaw forwards a pre-marshaled line-JSON event body under a
// caller-chosen request ID in exactly one attempt — the cluster
// router's building block, where retries, circuit breakers, and
// failover to ring successors live above this call rather than inside
// it. timeout, when positive, rides the deadline header so the replica
// can shed work the original caller has given up on. A 202
// journal-and-defer response is resolved here by polling /result: once
// a replica has accepted the batch, its ledger owns the verdict, so
// there is nothing to fail over.
func (c *Client) ClassifyRaw(ctx context.Context, id string, body []byte, timeout time.Duration) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/classify", bytes.NewReader(body))
	if err != nil {
		return nil, retry.Permanent(err)
	}
	req.Header.Set(RequestIDHeader, id)
	if timeout > 0 {
		req.Header.Set(TimeoutHeader, fmt.Sprintf("%d", timeout.Milliseconds()))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return data, nil
	case resp.StatusCode == http.StatusAccepted:
		c.Deferred.Add(1)
		return c.pollResult(ctx, id)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return nil, fmt.Errorf("serve: /classify: %s", resp.Status)
	default:
		return nil, retry.Permanent(fmt.Errorf("serve: /classify: %s: %s", resp.Status, bytes.TrimSpace(data)))
	}
}

// FetchResult asks this replica's ledger for the verdicts of id in a
// single shot: the body on a hit, ErrResultPending while journaled but
// unclassified, ErrUnknownRequest when the ledger has never seen the
// ID.
func (c *Client) FetchResult(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/result?id="+id, nil)
	if err != nil {
		return nil, retry.Permanent(err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return data, nil
	case http.StatusNoContent:
		return nil, ErrResultPending
	case http.StatusNotFound:
		return nil, ErrUnknownRequest
	default:
		return nil, fmt.Errorf("serve: /result: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
}

// Reload posts a rulemine-format JSON rule set to /admin/reload and
// returns the new rule-set generation.
func (c *Client) Reload(ctx context.Context, rulesJSON []byte) (uint64, error) {
	data, _, err := c.post(ctx, "/admin/reload", rulesJSON, "", "")
	if err != nil {
		return 0, err
	}
	var resp struct {
		Generation uint64 `json:"generation"`
		Rules      int    `json:"rules"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, fmt.Errorf("serve: reload response: %w", err)
	}
	return resp.Generation, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Lifecycle fetches /admin/lifecycle — the champion/challenger state a
// lifecycle-enabled daemon (or, aggregated, the cluster router) exposes.
func (c *Client) Lifecycle(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/admin/lifecycle", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("serve: /admin/lifecycle: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// HandoffExport pulls the replica's full ledger as one stream of
// CRC-framed handoff records (the concatenation of its export chunks).
// Single-shot by design: the cluster orchestrator owns retry policy
// and breaker state, the same way it owns them for forwarded classify
// traffic.
func (c *Client) HandoffExport(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/admin/handoff/export", nil)
	if err != nil {
		return nil, retry.Permanent(err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /admin/handoff/export: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	return data, nil
}

// HandoffImportStatsWire is the JSON ack /admin/handoff/import returns.
type HandoffImportStatsWire struct {
	Imported   int `json:"imported"`
	Pending    int `json:"pending"`
	Duplicates int `json:"duplicates"`
}

// HandoffImport ships one chunk of framed handoff records to the
// replica. A nil error means the receiver journaled and fsynced every
// entry before answering — the durable ack that lets the sender
// release authority for those IDs. Single-shot; callers wrap it in
// retry.Do.
func (c *Client) HandoffImport(ctx context.Context, chunk []byte) (HandoffImportStatsWire, error) {
	var st HandoffImportStatsWire
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/admin/handoff/import", bytes.NewReader(chunk))
	if err != nil {
		return st, retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("serve: /admin/handoff/import: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("serve: handoff import ack: %w", err)
	}
	return st, nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
