package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/journal"
)

func newTestLedger(t *testing.T, dir string) (*Ledger, *LedgerRecovery) {
	t.Helper()
	l, rec, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

// TestLedgerAcceptResultLookup: the basic exactly-once protocol —
// accept, result, dedup lookup — against a live journal.
func TestLedgerAcceptResultLookup(t *testing.T) {
	f := sharedFixture(t)
	l, rec := newTestLedger(t, t.TempDir())
	defer l.Close()
	if len(rec.Pending) != 0 || rec.Results != 0 {
		t.Fatalf("fresh ledger recovered %+v", rec)
	}
	events := f.replay[:4]
	if err := l.Accept("batch-1", events); err != nil {
		t.Fatal(err)
	}
	if !l.IsPending("batch-1") {
		t.Fatal("accepted batch not pending")
	}
	if _, ok := l.Lookup("batch-1"); ok {
		t.Fatal("pending batch has a result")
	}
	verdicts := []VerdictRecord{{Type: "verdict", File: string(events[0].File), Verdict: "benign"}}
	if _, err := l.Result("batch-1", verdicts); err != nil {
		t.Fatal(err)
	}
	if l.IsPending("batch-1") {
		t.Fatal("resulted batch still pending")
	}
	got, ok := l.LookupVerdicts("batch-1")
	if !ok || len(got) != 1 || got[0].File != verdicts[0].File {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	// First result wins: a racing duplicate must not overwrite.
	if _, err := l.Result("batch-1", []VerdictRecord{{File: "other"}}); err != nil {
		t.Fatal(err)
	}
	got, _ = l.LookupVerdicts("batch-1")
	if got[0].File != verdicts[0].File {
		t.Fatal("duplicate result overwrote the first")
	}
	// Accept of an already-resulted ID is a no-op, not a new pending.
	if err := l.Accept("batch-1", events); err != nil {
		t.Fatal(err)
	}
	if l.IsPending("batch-1") {
		t.Fatal("re-accept of resulted batch went pending")
	}
}

// TestLedgerRecoveryReplaysPending: a ledger reopened after an unclean
// stop reconstructs completed results and replays pending batches
// through the engine to byte-identical verdicts.
func TestLedgerRecoveryReplaysPending(t *testing.T) {
	f := sharedFixture(t)
	dir := t.TempDir()
	l, _ := newTestLedger(t, dir)
	engine := newTestEngine(t, f, EngineConfig{})

	done := f.replay[:3]
	verdicts, err := engine.ClassifyBatch(context.Background(), done)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Accept("done-1", done); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Result("done-1", verdicts); err != nil {
		t.Fatal(err)
	}
	pending := f.replay[3:8]
	if err := l.Accept("pend-1", pending); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: results are async, so force them down
	// before "dying" without Close-ing cleanly at the ledger layer.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := newTestLedger(t, dir)
	defer l2.Close()
	if rec.Results != 1 {
		t.Fatalf("recovered %d results, want 1", rec.Results)
	}
	if len(rec.Pending) != 1 || len(rec.Pending["pend-1"]) != 5 {
		t.Fatalf("recovered pending %+v", rec.Pending)
	}
	got, ok := l2.LookupVerdicts("done-1")
	if !ok || len(got) != len(verdicts) {
		t.Fatalf("completed batch lost in recovery: %v %v", got, ok)
	}
	for i := range got {
		if got[i].Key() != verdicts[i].Key() {
			t.Fatalf("recovered verdict %d = %q, want %q", i, got[i].Key(), verdicts[i].Key())
		}
	}

	n, err := RecoverLedger(engine, l2, rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d batches, want 1", n)
	}
	replayed, ok := l2.LookupVerdicts("pend-1")
	if !ok || len(replayed) != 5 {
		t.Fatalf("pending batch not resolved by recovery: %v %v", replayed, ok)
	}
	// Byte-identity: replayed verdicts match fresh offline classification.
	for i := range pending {
		want := offlineKey(t, f, f.clf, &pending[i])
		if replayed[i].Key() != want {
			t.Fatalf("replayed verdict %d = %q, offline %q", i, replayed[i].Key(), want)
		}
	}
}

// TestLedgerCompaction: compaction preserves the full dedup state and
// recovery afterwards still sees every batch.
func TestLedgerCompaction(t *testing.T) {
	f := sharedFixture(t)
	dir := t.TempDir()
	l, _ := newTestLedger(t, dir)
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("b-%02d", i)
		if err := l.Accept(id, f.replay[i:i+1]); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Result(id, []VerdictRecord{{Type: "verdict", File: string(f.replay[i].File)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Accept("open-1", f.replay[10:12]); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Compactions == 0 {
		t.Fatal("Compact did not compact")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := newTestLedger(t, dir)
	defer l2.Close()
	if rec.Results != 10 {
		t.Fatalf("post-compaction recovery found %d results, want 10", rec.Results)
	}
	if len(rec.Pending) != 1 || len(rec.Pending["open-1"]) != 2 {
		t.Fatalf("post-compaction pending %+v", rec.Pending)
	}
	for i := 0; i < 10; i++ {
		if _, ok := l2.Lookup(fmt.Sprintf("b-%02d", i)); !ok {
			t.Fatalf("batch b-%02d lost across compaction", i)
		}
	}
}

// TestLedgerResultRetention: the completed-result dedup cache is
// bounded — oldest-completed batches are evicted past MaxResults, both
// live and across recovery, and an evicted ID re-enters the accept path
// instead of being answered from the ledger.
func TestLedgerResultRetention(t *testing.T) {
	f := sharedFixture(t)
	dir := t.TempDir()
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}, MaxResults: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("b-%02d", i)
		if err := l.Accept(id, f.replay[i:i+1]); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Result(id, []VerdictRecord{{Type: "verdict", File: string(f.replay[i].File)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, completed := l.Counts(); completed != 4 {
		t.Fatalf("retained %d results, want 4", completed)
	}
	if _, ok := l.Lookup("b-00"); ok {
		t.Fatal("evicted result still served")
	}
	for i := 6; i < 10; i++ {
		if _, ok := l.Lookup(fmt.Sprintf("b-%02d", i)); !ok {
			t.Fatalf("recent result b-%02d evicted out of order", i)
		}
	}
	// A retransmit of an evicted ID is re-accepted (and would be
	// reclassified — deterministically, so the verdicts match).
	if err := l.Accept("b-00", f.replay[0:1]); err != nil {
		t.Fatal(err)
	}
	if !l.IsPending("b-00") {
		t.Fatal("re-accept of an evicted ID did not go pending")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery replays through the same bound: the journaled history
	// cannot resurrect more than MaxResults completed batches.
	l2, rec, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}, MaxResults: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Results > 4 {
		t.Fatalf("recovery resurrected %d results past the bound of 4", rec.Results)
	}
	if len(rec.Pending) != 1 || len(rec.Pending["b-00"]) != 1 {
		t.Fatalf("recovered pending %+v, want the re-accepted b-00", rec.Pending)
	}
}

// TestLedgerCompactConcurrentAccept: compaction racing with live
// accepts/results must never delete a batch's only durable record —
// after a reopen, every acknowledged ID is either completed or pending,
// regardless of where its journal append fell relative to the
// snapshot+rotation.
func TestLedgerCompactConcurrentAccept(t *testing.T) {
	f := sharedFixture(t)
	dir := t.TempDir()
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				if err := l.Accept(id, f.replay[:1]); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if _, err := l.Result(id, []VerdictRecord{{Type: "verdict", File: id}}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if err := l.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := fmt.Sprintf("w%d-%03d", w, i)
			_, completed := l2.Lookup(id)
			if !completed && !l2.IsPending(id) {
				t.Fatalf("batch %s vanished: accepted durably but lost across a concurrent compaction", id)
			}
		}
	}
}

// TestLedgerEmptyID: an empty request ID is rejected, not journaled.
func TestLedgerEmptyID(t *testing.T) {
	f := sharedFixture(t)
	l, _ := newTestLedger(t, t.TempDir())
	defer l.Close()
	if err := l.Accept("", f.replay[:1]); err == nil {
		t.Fatal("empty request id accepted")
	}
}
