// Package serve is the online verdict-serving subsystem: a long-running
// classification service that ingests download events at feed scale,
// extracts the Table XV features, and classifies each event with a
// tau-filtered rule set — the paper's Section VI-D operational mode
// ("rules generated based on past events are used to classify new,
// unknown events in the future") turned into a daemon.
//
// The subsystem is built from three pieces:
//
//   - Engine: a sharded worker pool with bounded ingest queues,
//     backpressure, graceful drain, and hot-swappable rule sets behind
//     an atomic pointer, so retraining never interrupts serving.
//   - Server: the HTTP surface (/classify, /admin/reload, /healthz,
//     /metrics) speaking internal/export's line-JSON wire format.
//   - Client: the matching request side, with retry/backoff on the
//     uplink path so internal/faults injectors can decorate it.
//
// Everything on the classification path is deterministic: a streamed
// verdict is byte-identical to what offline classify.ClassifyFile
// produces for the same event, which cmd/loadgen verifies end-to-end.
package serve

import (
	"fmt"
	"io"
	"os"

	"repro/internal/classify"
	"repro/internal/part"
)

// LoadRules reads a rulemine-format JSON rule set (the artifact an
// analyst reviews and edits) and builds a deployable classifier from it.
// This is the single reload path shared by cmd/longtaild's -rules flag,
// the /admin/reload endpoint and examples/operational.
func LoadRules(r io.Reader, policy classify.ConflictPolicy) (*classify.Classifier, error) {
	attrs, _ := classify.Schema()
	rules, err := part.DecodeRules(r, attrs)
	if err != nil {
		return nil, fmt.Errorf("serve: load rules: %w", err)
	}
	clf, err := classify.NewFromRules(rules, policy)
	if err != nil {
		return nil, fmt.Errorf("serve: load rules: %w", err)
	}
	return clf, nil
}

// LoadRulesFile is LoadRules over a file on disk.
func LoadRulesFile(path string, policy classify.ConflictPolicy) (*classify.Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load rules: %w", err)
	}
	defer f.Close()
	return LoadRules(f, policy)
}

// ExportRules writes a classifier's selected rule set in the same JSON
// format LoadRules reads, closing the train -> review -> deploy loop:
// `rulemine -json -o rules.json` and ExportRules produce identical
// artifacts.
func ExportRules(w io.Writer, clf *classify.Classifier) error {
	if clf == nil {
		return fmt.Errorf("serve: export rules: nil classifier")
	}
	return part.EncodeRules(w, clf.Rules)
}
