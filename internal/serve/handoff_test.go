package serve

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/journal"
)

// fillLedger installs n completed batches ("done-00"...) with
// distinctive bodies and p pending batches ("pend-00"...), returning
// the completed bodies by ID for byte-identity checks.
func fillLedger(t *testing.T, l *Ledger, n, p int) map[string][]byte {
	t.Helper()
	f := sharedFixture(t)
	bodies := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("done-%02d", i)
		ev := f.replay[i%len(f.replay) : i%len(f.replay)+1]
		if err := l.Accept(id, ev); err != nil {
			t.Fatal(err)
		}
		body, err := l.Result(id, []VerdictRecord{{Type: "verdict", File: fmt.Sprintf("file-%02d", i), Verdict: "benign"}})
		if err != nil {
			t.Fatal(err)
		}
		bodies[id] = body
	}
	for i := 0; i < p; i++ {
		id := fmt.Sprintf("pend-%02d", i)
		ev := f.replay[i%len(f.replay) : i%len(f.replay)+2]
		if err := l.Accept(id, ev); err != nil {
			t.Fatal(err)
		}
	}
	return bodies
}

// TestHandoffExportImportRoundTrip: the basic transfer — everything
// exported from one ledger lands in another byte-identical, completed
// entries answering Lookup and pending ones re-entering the pending
// set.
func TestHandoffExportImportRoundTrip(t *testing.T) {
	src, _ := newTestLedger(t, t.TempDir())
	defer src.Close()
	bodies := fillLedger(t, src, 8, 3)

	chunks, err := src.ExportRange(func(string) bool { return true }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 {
		t.Fatal("export of a populated ledger produced no chunks")
	}

	dst, _ := newTestLedger(t, t.TempDir())
	defer dst.Close()
	var st HandoffImportStats
	for _, c := range chunks {
		s, err := dst.ImportChunk(c.Data)
		if err != nil {
			t.Fatal(err)
		}
		st.Imported += s.Imported
		st.Pending += s.Pending
		st.Duplicates += s.Duplicates
	}
	if st.Imported != 8 || st.Pending != 3 || st.Duplicates != 0 {
		t.Fatalf("import stats = %+v, want 8 imported / 3 pending / 0 dup", st)
	}
	for id, want := range bodies {
		got, ok := dst.Lookup(id)
		if !ok {
			t.Fatalf("imported ledger lost %s", id)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("imported body for %s differs:\n got %q\nwant %q", id, got, want)
		}
	}
	for i := 0; i < 3; i++ {
		if !dst.IsPending(fmt.Sprintf("pend-%02d", i)) {
			t.Fatalf("pending pend-%02d did not survive handoff", i)
		}
	}
}

// TestHandoffExportRange: predicate filtering, deterministic chunking
// at a small byte budget, and the empty range exporting zero chunks.
func TestHandoffExportRange(t *testing.T) {
	l, _ := newTestLedger(t, t.TempDir())
	defer l.Close()
	fillLedger(t, l, 10, 2)

	t.Run("predicate filters", func(t *testing.T) {
		chunks, err := l.ExportRange(func(id string) bool { return strings.HasSuffix(id, "1") }, 0)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range chunks {
			total += c.Entries
		}
		// Of done-00..done-09 and pend-00/pend-01, exactly done-01 and
		// pend-01 end in "1".
		if total != 2 {
			t.Fatalf("filtered export carried %d entries, want 2", total)
		}
	})

	t.Run("small budget splits chunks", func(t *testing.T) {
		chunks, err := l.ExportRange(func(string) bool { return true }, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) < 2 {
			t.Fatalf("64-byte budget produced %d chunks, want several", len(chunks))
		}
		for i, c := range chunks {
			if c.Seq != i {
				t.Fatalf("chunk %d has Seq %d", i, c.Seq)
			}
			if c.Entries == 0 {
				t.Fatalf("chunk %d is empty", i)
			}
		}
	})

	t.Run("empty range", func(t *testing.T) {
		chunks, err := l.ExportRange(func(string) bool { return false }, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != 0 {
			t.Fatalf("empty range exported %d chunks", len(chunks))
		}
	})

	t.Run("nil predicate", func(t *testing.T) {
		if _, err := l.ExportRange(nil, 0); err == nil {
			t.Fatal("nil predicate accepted")
		}
	})
}

// TestHandoffImportIdempotent: duplicated and reordered chunk delivery
// — the retransmission patterns a flaky transfer produces — converge to
// the same ledger state with duplicates counted, not re-imported.
func TestHandoffImportIdempotent(t *testing.T) {
	src, _ := newTestLedger(t, t.TempDir())
	defer src.Close()
	bodies := fillLedger(t, src, 6, 2)
	chunks, err := src.ExportRange(func(string) bool { return true }, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("need >= 2 chunks to reorder, got %d", len(chunks))
	}

	cases := []struct {
		name  string
		order func() [][]byte
	}{
		{"duplicate every chunk", func() [][]byte {
			var out [][]byte
			for _, c := range chunks {
				out = append(out, c.Data, c.Data)
			}
			return out
		}},
		{"reverse order", func() [][]byte {
			out := make([][]byte, 0, len(chunks))
			for i := len(chunks) - 1; i >= 0; i-- {
				out = append(out, chunks[i].Data)
			}
			return out
		}},
		{"interleaved replay", func() [][]byte {
			var out [][]byte
			for _, c := range chunks {
				out = append(out, c.Data)
			}
			for i := len(chunks) - 1; i >= 0; i-- {
				out = append(out, chunks[i].Data)
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst, _ := newTestLedger(t, t.TempDir())
			defer dst.Close()
			var imported, pending, dups int
			for _, data := range tc.order() {
				st, err := dst.ImportChunk(data)
				if err != nil {
					t.Fatal(err)
				}
				imported += st.Imported
				pending += st.Pending
				dups += st.Duplicates
			}
			if imported != 6 || pending != 2 {
				t.Fatalf("imported %d / pending %d, want 6 / 2", imported, pending)
			}
			for id, want := range bodies {
				got, ok := dst.Lookup(id)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("%s: got %q ok=%v, want %q", id, got, ok, want)
				}
			}
		})
	}
}

// TestHandoffImportRejectsDamage: a truncated or bit-flipped chunk is
// refused whole — no prefix import that would hide the damage.
func TestHandoffImportRejectsDamage(t *testing.T) {
	src, _ := newTestLedger(t, t.TempDir())
	defer src.Close()
	fillLedger(t, src, 3, 0)
	chunks, err := src.ExportRange(func(string) bool { return true }, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := chunks[0].Data

	dst, _ := newTestLedger(t, t.TempDir())
	defer dst.Close()
	if _, err := dst.ImportChunk(data[:len(data)-3]); err == nil {
		t.Fatal("truncated chunk imported")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := dst.ImportChunk(flipped); err == nil {
		t.Fatal("bit-flipped chunk imported")
	}
	if ids := dst.CompletedIDs(); len(ids) != 0 {
		t.Fatalf("damaged chunks left a partial import: %v", ids)
	}
}

// TestHandoffImportCrashReplay: kill -9 on the importer. Before the
// chunk ack (ImportChunk returning) nothing is promised; after it the
// entries must survive the crash, and replaying the same chunk against
// the recovered ledger — what a source that never saw the ack does —
// converges as pure duplicates.
func TestHandoffImportCrashReplay(t *testing.T) {
	src, _ := newTestLedger(t, t.TempDir())
	defer src.Close()
	bodies := fillLedger(t, src, 5, 1)
	chunks, err := src.ExportRange(func(string) bool { return true }, 0)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := faults.NewInjector(faults.Config{Seed: 11, TornWriteRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dst, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{
		Dir:      dir,
		OpenFile: func(path string) (journal.File, error) { return fs.Open(path) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if _, err := dst.ImportChunk(c.Data); err != nil {
			t.Fatal(err)
		}
	}
	// The acks above are durable promises; kill -9 now.
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}

	dst2, rec, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer dst2.Close()
	if rec.Results != 5 || len(rec.Pending) != 1 {
		t.Fatalf("recovered %d results / %d pending, want 5 / 1", rec.Results, len(rec.Pending))
	}
	for id, want := range bodies {
		got, ok := dst2.Lookup(id)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("acked import lost to crash: %s got %q ok=%v", id, got, ok)
		}
	}
	// Source never saw the ack (response lost in the crash): it replays
	// the full transfer. Everything must dedup.
	for _, c := range chunks {
		st, err := dst2.ImportChunk(c.Data)
		if err != nil {
			t.Fatal(err)
		}
		if st.Imported != 0 || st.Pending != 0 || st.Duplicates != c.Entries {
			t.Fatalf("post-crash replay re-imported: %+v (chunk %d entries)", st, c.Entries)
		}
	}
}

// TestExportConcurrentCompact: satellite for the snapshot race — export
// iteration (ExportRange, CompletedIDs, LookupVerdicts) interleaved
// with staged compaction under -race. Every ID completed before an
// export begins must appear in that export; compaction running
// mid-export must never drop captured records.
func TestExportConcurrentCompact(t *testing.T) {
	l, _ := newTestLedger(t, t.TempDir())
	defer l.Close()
	fillLedger(t, l, 64, 4)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, id := range l.CompletedIDs() {
				if _, ok := l.LookupVerdicts(id); !ok {
					t.Errorf("CompletedIDs listed %s but LookupVerdicts missed it", id)
					return
				}
			}
		}
	}()
	for i := 0; i < 50; i++ {
		chunks, err := l.ExportRange(func(id string) bool { return strings.HasPrefix(id, "done-") }, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, c := range chunks {
			got += c.Entries
		}
		if got != 64 {
			t.Fatalf("export round %d saw %d completed entries, want 64", i, got)
		}
	}
	close(stop)
	wg.Wait()
}
