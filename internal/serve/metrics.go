package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/journal"
)

// latencyBounds are the histogram bucket upper bounds in seconds,
// roughly exponential from 10µs to 1s. Classification of one event is
// microseconds of work, so the low buckets carry the signal; the high
// ones catch queueing under overload.
var latencyBounds = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 1,
}

// numBuckets is len(latencyBounds) plus the implicit +Inf bucket.
const numBuckets = 16

func init() {
	if numBuckets != len(latencyBounds)+1 {
		panic("serve: numBuckets must equal len(latencyBounds)+1")
	}
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation; the final implicit bucket is +Inf.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sumNS  atomic.Uint64
	n      atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// write emits the histogram in cumulative-bucket exposition form.
func (h *Histogram) write(w io.Writer, name, stage string) {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(latencyBounds) {
			le = strconv.FormatFloat(latencyBounds[i], 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n", name, stage, le, cum)
	}
	fmt.Fprintf(w, "%s_sum{stage=%q} %g\n", name, stage,
		float64(h.sumNS.Load())/float64(time.Second))
	fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, stage, h.n.Load())
}

// Metrics is the serving subsystem's observable state: verdict
// counters, per-stage latency histograms, queue/backpressure counters
// and the rule-set reload generation. All fields are safe for
// concurrent use; the zero value is ready.
type Metrics struct {
	// RequestsAccepted / RequestsRejected count /classify batches
	// admitted into the queue vs shed with 429 on overflow.
	RequestsAccepted atomic.Uint64
	RequestsRejected atomic.Uint64
	// RequestsDeferred counts batches that took the journal-and-defer
	// rung of the admission ladder: journaled durably, classified in the
	// background, results fetched via GET /result.
	RequestsDeferred atomic.Uint64
	// DedupHits counts batches answered straight from the verdict ledger
	// because their request ID was already journaled with a result — a
	// retransmit after a lost response, served without reclassification.
	DedupHits atomic.Uint64
	// ShedExpired counts events shed because their request's deadline
	// expired before a worker reached them.
	ShedExpired atomic.Uint64
	// ReloadFailures counts rule-set updates refused by validation; the
	// engine keeps serving the previous generation (degraded mode).
	ReloadFailures atomic.Uint64
	// BadRequests counts malformed /classify or /admin/reload bodies.
	BadRequests atomic.Uint64
	// EventsIn counts individual events admitted for classification.
	EventsIn atomic.Uint64
	// MemoHits counts events answered from a worker's per-shard verdict
	// memo — repeat (file, process, domain) triples under an unchanged
	// rule generation that skipped extraction and matching entirely.
	MemoHits atomic.Uint64
	// ExtractErrors counts events whose feature extraction failed
	// (e.g. no metadata for the file); these return an error verdict
	// rather than failing the batch.
	ExtractErrors atomic.Uint64
	// Reloads counts successful hot rule-set swaps; Generation is the
	// current rule-set generation (1 = the set loaded at boot).
	Reloads    atomic.Uint64
	Generation atomic.Uint64

	// Per-stage latency: time spent queued, extracting features, and
	// classifying.
	QueueWait Histogram
	Extract   Histogram
	Classify  Histogram

	verdicts [4]atomic.Uint64
}

// CountVerdict records one served verdict.
func (m *Metrics) CountVerdict(v classify.Verdict) {
	if v >= 0 && int(v) < len(m.verdicts) {
		m.verdicts[v].Add(1)
	}
}

// VerdictCount returns the number of verdicts served with value v.
func (m *Metrics) VerdictCount(v classify.Verdict) uint64 {
	if v < 0 || int(v) >= len(m.verdicts) {
		return 0
	}
	return m.verdicts[v].Load()
}

// JournalMetrics is the commit-path snapshot /metrics renders when a
// ledger is attached: aggregate journal counters, per-shard counters
// and acknowledgment-queue lag, and the group-commit batch-size
// histogram (records acked per fsync).
type JournalMetrics struct {
	Stats     journal.Stats
	Shards    []journal.Stats
	Lag       []uint64
	SyncBatch journal.BatchStats
}

// WriteTo emits the metrics in Prometheus-style text exposition format.
// queueDepth and degraded are sampled at call time (the engine owns
// them); jm carries the journal commit-path snapshot when a ledger is
// attached (nil otherwise).
func (m *Metrics) WriteTo(w io.Writer, queueDepth int, degraded bool, jm *JournalMetrics) {
	fmt.Fprintf(w, "longtail_requests_total{result=\"accepted\"} %d\n", m.RequestsAccepted.Load())
	fmt.Fprintf(w, "longtail_requests_total{result=\"rejected\"} %d\n", m.RequestsRejected.Load())
	fmt.Fprintf(w, "longtail_requests_total{result=\"deferred\"} %d\n", m.RequestsDeferred.Load())
	fmt.Fprintf(w, "longtail_requests_total{result=\"bad\"} %d\n", m.BadRequests.Load())
	fmt.Fprintf(w, "longtail_requests_total{result=\"dedup\"} %d\n", m.DedupHits.Load())
	fmt.Fprintf(w, "longtail_events_total %d\n", m.EventsIn.Load())
	fmt.Fprintf(w, "longtail_memo_hits_total %d\n", m.MemoHits.Load())
	for v := classify.VerdictNone; v <= classify.VerdictRejected; v++ {
		fmt.Fprintf(w, "longtail_verdicts_total{verdict=%q} %d\n", v.String(), m.verdicts[v].Load())
	}
	fmt.Fprintf(w, "longtail_extract_errors_total %d\n", m.ExtractErrors.Load())
	fmt.Fprintf(w, "longtail_shed_expired_total %d\n", m.ShedExpired.Load())
	fmt.Fprintf(w, "longtail_reloads_total %d\n", m.Reloads.Load())
	fmt.Fprintf(w, "longtail_reload_failures_total %d\n", m.ReloadFailures.Load())
	fmt.Fprintf(w, "longtail_reload_generation %d\n", m.Generation.Load())
	fmt.Fprintf(w, "longtail_degraded %d\n", boolGauge(degraded))
	fmt.Fprintf(w, "longtail_queue_depth %d\n", queueDepth)
	if jm != nil {
		js := jm.Stats
		fmt.Fprintf(w, "longtail_journal_appends_total %d\n", js.Appends)
		fmt.Fprintf(w, "longtail_journal_syncs_total %d\n", js.Syncs)
		fmt.Fprintf(w, "longtail_journal_rotations_total %d\n", js.Rotations)
		fmt.Fprintf(w, "longtail_journal_compactions_total %d\n", js.Compactions)
		fmt.Fprintf(w, "longtail_journal_bytes_total %d\n", js.Bytes)
		// Per-shard fsync counts and ack-queue lag: uneven syncs mean a
		// skewed key distribution; sustained lag on one shard means its
		// device (or its sync loop) is the straggler.
		for i, st := range jm.Shards {
			fmt.Fprintf(w, "longtail_journal_shard_syncs_total{shard=\"%d\"} %d\n", i, st.Syncs)
		}
		for i, lag := range jm.Lag {
			fmt.Fprintf(w, "longtail_journal_shard_lag{shard=\"%d\"} %d\n", i, lag)
		}
		// Group-commit batch size: how many appended records each fsync
		// retired. Mass pinned in the "1" bucket means the ack queue is
		// degenerating to per-record fsyncs.
		cum := uint64(0)
		for i, c := range jm.SyncBatch.Buckets {
			cum += c
			le := "+Inf"
			if i < len(journal.SyncBatchBounds) {
				le = strconv.FormatUint(journal.SyncBatchBounds[i], 10)
			}
			fmt.Fprintf(w, "longtail_journal_sync_batch_bucket{le=%q} %d\n", le, cum)
		}
		fmt.Fprintf(w, "longtail_journal_sync_batch_sum %d\n", jm.SyncBatch.Sum)
		fmt.Fprintf(w, "longtail_journal_sync_batch_count %d\n", jm.SyncBatch.Count)
	}
	m.QueueWait.write(w, "longtail_stage_latency_seconds", "queue")
	m.Extract.write(w, "longtail_stage_latency_seconds", "extract")
	m.Classify.write(w, "longtail_stage_latency_seconds", "classify")
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
