package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dataset"
)

// Compact binary wire format for /classify, negotiated via Content-Type
// alongside the line-JSON default. At provider-scale feed rates the
// line-JSON framing spends a meaningful fraction of each request on
// field names, quoting and RFC 3339 timestamps; the binary form carries
// the same records in length-prefixed little-endian frames, in the same
// hand-rolled codec style as export/fastline.go and encode.go.
//
// The format is wire-only: a binary request is decoded and immediately
// re-rendered to canonical line-JSON before it reaches the ledger, so
// the journal, its snapshots, the handoff chunks and recovery all keep
// speaking exactly one format, and a client can switch formats between
// a transmit and its retransmit without splitting the dedup state. The
// JSON path remains the reference implementation — wire_test.go holds
// the two equal differentially, including under fuzz.
//
// Layout (everything little endian):
//
//	events body    "lte1" u32(count) count×event
//	event          u8(flags: 1=executed 2=has-domain)
//	               i64(unix seconds) u32(nanoseconds) i32(zone offset seconds)
//	               str(file) str(machine) str(process) str(url) [str(domain)]
//	verdicts body  "ltv1" u32(count) count×verdict
//	verdict        u8(flags: 1=has-rules 2=has-error)
//	               str(type) str(file) str(verdict) u64(gen)
//	               [u32(n) n×i64(rule)] [str(error)]
//	str            u32(len) len bytes
//
// Timestamps travel as seconds + nanoseconds + zone offset rather than
// a single UnixNano: the strict RFC 3339 range the JSON codec accepts
// (years 0..9999) overflows int64 nanoseconds, and the offset is what
// round-trips the rendered zone suffix byte-for-byte.
const (
	// ContentTypeBinaryEvents marks a /classify request body in the
	// binary event format; the response then uses the binary verdict
	// format. ContentTypeBinaryVerdicts is that response type, and the
	// Accept value that selects binary replies from GET /result.
	ContentTypeBinaryEvents   = "application/x-longtail-events"
	ContentTypeBinaryVerdicts = "application/x-longtail-verdicts"
)

const (
	binaryEventsMagic   = "lte1"
	binaryVerdictsMagic = "ltv1"

	flagExecuted  = 1
	flagHasDomain = 2
	flagHasRules  = 1
	flagHasError  = 2

	// maxBinaryString bounds one string field, mirroring maxEventLine on
	// the JSON path so a corrupt length cannot drive a huge allocation.
	maxBinaryString = maxEventLine
)

// appendBinString appends a length-prefixed string.
func appendBinString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// The reads decode from a string (the request body lands in one string;
// substrings slice out of it allocation-free, like the JSON fast path).

func binU32(s string, off int) uint32 {
	return uint32(s[off]) | uint32(s[off+1])<<8 | uint32(s[off+2])<<16 | uint32(s[off+3])<<24
}

func binU64(s string, off int) uint64 {
	return uint64(binU32(s, off)) | uint64(binU32(s, off+4))<<32
}

func readBinString(s string, off int) (string, int, error) {
	if len(s)-off < 4 {
		return "", off, fmt.Errorf("truncated string length")
	}
	n := int(binU32(s, off))
	off += 4
	if n > maxBinaryString || len(s)-off < n {
		return "", off, fmt.Errorf("string of %d bytes overruns body", n)
	}
	return s[off : off+n], off + n, nil
}

// appendBinaryEvent appends one event record.
func appendBinaryEvent(dst []byte, e *dataset.DownloadEvent) []byte {
	var flags byte
	if e.Executed {
		flags |= flagExecuted
	}
	if e.Domain != "" {
		flags |= flagHasDomain
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Time.Unix()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Time.Nanosecond()))
	_, off := e.Time.Zone()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(off)))
	dst = appendBinString(dst, string(e.File))
	dst = appendBinString(dst, string(e.Machine))
	dst = appendBinString(dst, string(e.Process))
	dst = appendBinString(dst, e.URL)
	if e.Domain != "" {
		dst = appendBinString(dst, e.Domain)
	}
	return dst
}

// appendBinaryEvents renders a whole batch in the binary event format.
func appendBinaryEvents(dst []byte, events []dataset.DownloadEvent) []byte {
	dst = append(dst, binaryEventsMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(events)))
	for i := range events {
		dst = appendBinaryEvent(dst, &events[i])
	}
	return dst
}

// minBinaryEvent is the smallest possible event record (empty strings,
// no domain): flags + time + four length prefixes.
const minBinaryEvent = 1 + 8 + 4 + 4 + 4*4

// decodeBinaryEvents decodes a binary /classify body. Every event is
// checked against the same strictness the JSON codec enforces — valid
// nanoseconds, a whole-minute zone offset within a day, a year within
// RFC 3339's range — so anything decoded here re-renders to canonical
// line-JSON without falling off export.AppendEventLine's fast path.
func decodeBinaryEvents(s string) ([]dataset.DownloadEvent, error) {
	if len(s) < 8 || s[:4] != binaryEventsMagic {
		return nil, fmt.Errorf("serve: binary events: missing %q header", binaryEventsMagic)
	}
	count := int(binU32(s, 4))
	off := 8
	if count > (len(s)-off)/minBinaryEvent {
		return nil, fmt.Errorf("serve: binary events: count %d overruns body", count)
	}
	events := make([]dataset.DownloadEvent, 0, count)
	for i := 0; i < count; i++ {
		if len(s)-off < minBinaryEvent {
			return nil, fmt.Errorf("serve: binary events: record %d truncated", i)
		}
		flags := s[off]
		off++
		sec := int64(binU64(s, off))
		off += 8
		nanos := binU32(s, off)
		off += 4
		zoff := int32(binU32(s, off))
		off += 4
		if nanos >= 1e9 {
			return nil, fmt.Errorf("serve: binary events: record %d: nanoseconds %d out of range", i, nanos)
		}
		if zoff%60 != 0 || zoff <= -24*3600 || zoff >= 24*3600 {
			return nil, fmt.Errorf("serve: binary events: record %d: zone offset %d not a whole minute within a day", i, zoff)
		}
		loc := time.UTC
		if zoff != 0 {
			loc = time.FixedZone("", int(zoff))
		}
		t := time.Unix(sec, int64(nanos)).In(loc)
		if y := t.Year(); y < 0 || y > 9999 {
			return nil, fmt.Errorf("serve: binary events: record %d: year %d outside RFC 3339", i, y)
		}
		var ev dataset.DownloadEvent
		ev.Time = t
		ev.Executed = flags&flagExecuted != 0
		var field string
		var err error
		if field, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary events: record %d file: %w", i, err)
		}
		ev.File = dataset.FileHash(field)
		if field, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary events: record %d machine: %w", i, err)
		}
		ev.Machine = dataset.MachineID(field)
		if field, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary events: record %d process: %w", i, err)
		}
		ev.Process = dataset.FileHash(field)
		if ev.URL, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary events: record %d url: %w", i, err)
		}
		if flags&flagHasDomain != 0 {
			if ev.Domain, off, err = readBinString(s, off); err != nil {
				return nil, fmt.Errorf("serve: binary events: record %d domain: %w", i, err)
			}
			if ev.Domain == "" {
				return nil, fmt.Errorf("serve: binary events: record %d: empty domain with domain flag set", i)
			}
		}
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("serve: binary events: record %d: %w", i, err)
		}
		events = append(events, ev)
	}
	if off != len(s) {
		return nil, fmt.Errorf("serve: binary events: %d trailing bytes", len(s)-off)
	}
	return events, nil
}

// appendBinaryVerdicts renders a verdict slice in the binary verdict
// format — the binary counterpart of appendVerdictBody.
func appendBinaryVerdicts(dst []byte, verdicts []VerdictRecord) []byte {
	dst = append(dst, binaryVerdictsMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(verdicts)))
	for i := range verdicts {
		v := &verdicts[i]
		var flags byte
		if len(v.Rules) > 0 {
			flags |= flagHasRules
		}
		if v.Error != "" {
			flags |= flagHasError
		}
		dst = append(dst, flags)
		dst = appendBinString(dst, v.Type)
		dst = appendBinString(dst, v.File)
		dst = appendBinString(dst, v.Verdict)
		dst = binary.LittleEndian.AppendUint64(dst, v.Generation)
		if len(v.Rules) > 0 {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Rules)))
			for _, r := range v.Rules {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(r)))
			}
		}
		if v.Error != "" {
			dst = appendBinString(dst, v.Error)
		}
	}
	return dst
}

// minBinaryVerdict is the smallest verdict record: flags + three length
// prefixes + generation.
const minBinaryVerdict = 1 + 3*4 + 8

// decodeBinaryVerdicts decodes a binary verdict body — what a client
// speaking the binary format runs on each response.
func decodeBinaryVerdicts(s string) ([]VerdictRecord, error) {
	if len(s) < 8 || s[:4] != binaryVerdictsMagic {
		return nil, fmt.Errorf("serve: binary verdicts: missing %q header", binaryVerdictsMagic)
	}
	count := int(binU32(s, 4))
	off := 8
	if count > (len(s)-off)/minBinaryVerdict {
		return nil, fmt.Errorf("serve: binary verdicts: count %d overruns body", count)
	}
	verdicts := make([]VerdictRecord, 0, count)
	for i := 0; i < count; i++ {
		if len(s)-off < minBinaryVerdict {
			return nil, fmt.Errorf("serve: binary verdicts: record %d truncated", i)
		}
		flags := s[off]
		off++
		var v VerdictRecord
		var err error
		if v.Type, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary verdicts: record %d type: %w", i, err)
		}
		if v.File, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary verdicts: record %d file: %w", i, err)
		}
		var verdict string
		if verdict, off, err = readBinString(s, off); err != nil {
			return nil, fmt.Errorf("serve: binary verdicts: record %d verdict: %w", i, err)
		}
		v.Verdict = canonicalVerdict(verdict)
		if len(s)-off < 8 {
			return nil, fmt.Errorf("serve: binary verdicts: record %d truncated", i)
		}
		v.Generation = binU64(s, off)
		off += 8
		if flags&flagHasRules != 0 {
			if len(s)-off < 4 {
				return nil, fmt.Errorf("serve: binary verdicts: record %d truncated", i)
			}
			n := int(binU32(s, off))
			off += 4
			if n == 0 || n > (len(s)-off)/8 {
				return nil, fmt.Errorf("serve: binary verdicts: record %d: rule count %d overruns body", i, n)
			}
			v.Rules = make([]int, n)
			for r := 0; r < n; r++ {
				v.Rules[r] = int(int64(binU64(s, off)))
				off += 8
			}
		}
		if flags&flagHasError != 0 {
			if v.Error, off, err = readBinString(s, off); err != nil {
				return nil, fmt.Errorf("serve: binary verdicts: record %d error: %w", i, err)
			}
			if v.Error == "" {
				return nil, fmt.Errorf("serve: binary verdicts: record %d: empty error with error flag set", i)
			}
		}
		verdicts = append(verdicts, v)
	}
	if off != len(s) {
		return nil, fmt.Errorf("serve: binary verdicts: %d trailing bytes", len(s)-off)
	}
	return verdicts, nil
}

// parseVerdictBody parses a journaled line-JSON response body back into
// verdict records: the bridge a binary-negotiated retransmit crosses —
// the ledger stores one canonical JSON body per ID, and the binary
// reply is re-encoded from it deterministically, so binary retransmits
// are byte-identical just like JSON ones. Canonical lines take the
// slicing fast path; anything else falls back to encoding/json.
func parseVerdictBody(body []byte) ([]VerdictRecord, error) {
	verdicts := make([]VerdictRecord, 0, bytes.Count(body, []byte{'\n'}))
	for len(body) > 0 {
		line := body
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			line, body = body[:nl], body[nl+1:]
		} else {
			body = nil
		}
		if len(line) == 0 {
			continue
		}
		if v, ok := parseVerdictLine(string(line)); ok {
			verdicts = append(verdicts, v)
			continue
		}
		var v VerdictRecord
		if err := json.Unmarshal(line, &v); err != nil {
			return nil, fmt.Errorf("serve: verdict body: %w", err)
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}
