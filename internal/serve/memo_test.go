package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/classify"
	"repro/internal/features"
	"repro/internal/part"
)

// allMatchClassifier builds a classifier with one rule that matches
// every instance (AlexaRank <= +huge) and concludes malicious — verdicts
// under it differ from the trained fixture classifier for almost every
// event, which is what makes stale memo entries detectable.
func allMatchClassifier(t *testing.T) *classify.Classifier {
	t.Helper()
	clf, err := classify.NewFromRules([]part.Rule{{
		Conditions: []part.Condition{{
			AttrIndex: features.NumNominal,
			AttrName:  features.AttributeNames[features.NumNominal],
			Op:        part.OpLE, Threshold: 1e12,
		}},
		Class: classify.ClassMalicious, ClassName: "malicious",
	}}, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// TestMemoFreshAcrossSwap hammers the per-worker verdict memo with hot
// reloads that change the rules: streamers replay the same small event
// set (maximal memo pressure) while a reloader alternates between two
// classifiers with different verdicts. Every returned verdict must
// match the offline classification under the generation it claims —
// a memo entry surviving a Swap would surface as a verdict labeled
// with the new generation but computed under the old rules. Run under
// -race this also exercises the worker-owned memo for data races.
func TestMemoFreshAcrossSwap(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 4, QueueSize: 4096})
	clfB := allMatchClassifier(t)

	hot := f.replay[:24]
	// Generation g serves f.clf when odd (boot gen is 1), clfB when even.
	keyFor := make(map[uint64][]string, 2)
	for _, pair := range []struct {
		parity uint64
		clf    *classify.Classifier
	}{{1, f.clf}, {0, clfB}} {
		keys := make([]string, len(hot))
		for i := range hot {
			keys[i] = offlineKey(t, f, pair.clf, &hot[i])
		}
		keyFor[pair.parity] = keys
	}

	const reloads = 40
	var wg sync.WaitGroup
	var failed atomic.Bool
	errCh := make(chan error, 5)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			clf := clfB
			if i%2 == 1 {
				clf = f.clf
			}
			if _, err := engine.Swap(clf); err != nil {
				errCh <- err
				failed.Store(true)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 60 && !failed.Load(); iter++ {
				verdicts, err := engine.ClassifyBatch(context.Background(), hot)
				if err != nil {
					errCh <- err
					failed.Store(true)
					return
				}
				for i, v := range verdicts {
					want := keyFor[v.Generation%2][i]
					if got := v.Key(); got != want {
						errCh <- fmt.Errorf("event %d gen %d: got %q, offline says %q",
							i, v.Generation, got, want)
						failed.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	engine.Close()
}

// TestMemoHitAccounting: replaying an identical batch must answer from
// the memo (hits counted, verdicts unchanged) and the counter must
// surface in the /metrics exposition.
func TestMemoHitAccounting(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 1024})
	batch := f.replay[:20]
	first, err := engine.ClassifyBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if hits := engine.Metrics().MemoHits.Load(); hits != 0 {
		// The batch may repeat (file, process, domain) triples; hits on
		// the first pass are legal but must be strictly fewer than the
		// batch size.
		if hits >= uint64(len(batch)) {
			t.Fatalf("first pass recorded %d memo hits for %d events", hits, len(batch))
		}
	}
	second, err := engine.ClassifyBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	hits := engine.Metrics().MemoHits.Load()
	if hits < uint64(len(batch)) {
		t.Fatalf("after identical replay MemoHits = %d, want >= %d", hits, len(batch))
	}
	for i := range first {
		if first[i].Key() != second[i].Key() || first[i].Generation != second[i].Generation {
			t.Fatalf("memoized verdict %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
	var buf bytes.Buffer
	engine.Metrics().WriteTo(&buf, engine.QueueDepth(), false, nil)
	if !strings.Contains(buf.String(), "longtail_memo_hits_total ") {
		t.Fatal("metrics exposition lacks longtail_memo_hits_total")
	}
	// Verdict tallies must count memoized answers too.
	var total uint64
	for v := classify.VerdictNone; v <= classify.VerdictRejected; v++ {
		total += engine.Metrics().VerdictCount(v)
	}
	if want := uint64(2 * len(batch)); total != want {
		t.Fatalf("verdict tallies sum to %d, want %d", total, want)
	}
	engine.Close()
}
