package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/avsim"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/features"
	"repro/internal/labeling"
	"repro/internal/synth"
)

// The fixture is one small deterministic pipeline shared by every test:
// a labeled corpus, an extractor, a classifier trained on month 1, and
// the month-2 events the serving tests replay. It is built directly
// from synth+labeling (not experiments.Run) because internal/
// experiments imports this package for the chaos-serve harness.
type fixture struct {
	store  *dataset.Store
	ex     *features.Extractor
	clf    *classify.Classifier
	replay []dataset.DownloadEvent
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

// labeledStore generates and labels the deterministic corpus, the
// inlined equivalent of experiments.Run without the analyzer.
func labeledStore(cfg synth.Config) (*synth.Result, error) {
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	lab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := lab.LabelStore(res.Store, res.Samples); err != nil {
		return nil, err
	}
	res.Store.Freeze()
	return res, nil
}

func sharedFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		p, err := labeledStore(synth.DefaultConfig(7, 0.004))
		if err != nil {
			fixErr = err
			return
		}
		ex, err := features.NewExtractor(p.Store, p.Oracle)
		if err != nil {
			fixErr = err
			return
		}
		months := p.Store.Months()
		if len(months) < 2 {
			fixErr = fmt.Errorf("fixture: need >= 2 months, got %d", len(months))
			return
		}
		train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
		if err != nil {
			fixErr = err
			return
		}
		clf, err := classify.Train(train, 0.001, classify.Reject)
		if err != nil {
			fixErr = err
			return
		}
		events := p.Store.Events()
		var replay []dataset.DownloadEvent
		for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
			replay = append(replay, events[idx])
		}
		fix = &fixture{store: p.Store, ex: ex, clf: clf, replay: replay}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// offlineKey computes the canonical offline verdict for one event, the
// reference every streamed verdict must match byte-for-byte.
func offlineKey(t *testing.T, f *fixture, clf *classify.Classifier, ev *dataset.DownloadEvent) string {
	t.Helper()
	vec, err := f.ex.Vector(ev)
	if err != nil {
		t.Fatal(err)
	}
	inst := features.Instance{Vector: vec, File: ev.File}
	v, matched := clf.ClassifyFile([]features.Instance{inst})
	return fmt.Sprintf("%s %s %v", ev.File, v, matched)
}

func newTestEngine(t *testing.T, f *fixture, cfg EngineConfig) *Engine {
	t.Helper()
	engine, err := NewEngine(f.ex, f.clf, cfg, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(engine.Close)
	return engine
}

// TestRulesRoundTrip covers the rulemine -json -o -> longtaild -rules
// artifact loop: export the trained rule set to disk, load it back
// through the serving rule loader, and require identical verdicts on
// every replay event.
func TestRulesRoundTrip(t *testing.T) {
	f := sharedFixture(t)
	path := filepath.Join(t.TempDir(), "rules.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportRules(out, f.clf); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRulesFile(path, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(loaded.Rules), len(f.clf.Rules); got != want {
		t.Fatalf("round-trip rule count = %d, want %d", got, want)
	}
	for i := range f.replay {
		ev := &f.replay[i]
		if got, want := offlineKey(t, f, loaded, ev), offlineKey(t, f, f.clf, ev); got != want {
			t.Fatalf("event %d: round-tripped rules classify %q, original %q", i, got, want)
		}
	}
	// A second export of the loaded set must reproduce the artifact
	// byte-for-byte (analyst diffs depend on this).
	var again bytes.Buffer
	if err := ExportRules(&again, loaded); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), disk) {
		t.Fatal("re-exported rule set differs from the original artifact")
	}
}

// TestEngineMatchesOffline is the core determinism contract: streamed
// verdicts are byte-identical to offline classification.
func TestEngineMatchesOffline(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 3, QueueSize: 256})
	const batch = 50
	for lo := 0; lo < len(f.replay); lo += batch {
		hi := lo + batch
		if hi > len(f.replay) {
			hi = len(f.replay)
		}
		verdicts, err := engine.ClassifyBatch(context.Background(), f.replay[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range verdicts {
			if v.Generation != 1 {
				t.Fatalf("verdict generation = %d, want 1", v.Generation)
			}
			if got, want := v.Key(), offlineKey(t, f, f.clf, &f.replay[lo+i]); got != want {
				t.Fatalf("event %d: streamed %q, offline %q", lo+i, got, want)
			}
		}
	}
	m := engine.Metrics()
	if got, want := m.EventsIn.Load(), uint64(len(f.replay)); got != want {
		t.Fatalf("EventsIn = %d, want %d", got, want)
	}
	if m.QueueWait.Count() == 0 || m.Extract.Count() == 0 {
		t.Fatal("latency histograms recorded nothing")
	}
}

// TestEngineBackpressure verifies all-or-nothing admission: a batch
// that cannot fit the bounded queue is rejected with ErrOverloaded and
// nothing is enqueued.
func TestEngineBackpressure(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 8})
	if _, err := engine.ClassifyBatch(context.Background(), f.replay[:9]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized batch error = %v, want ErrOverloaded", err)
	}
	if engine.QueueDepth() != 0 {
		t.Fatalf("queue depth after rejected batch = %d, want 0", engine.QueueDepth())
	}
	// A batch that fits still serves.
	verdicts, err := engine.ClassifyBatch(context.Background(), f.replay[:8])
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 8 {
		t.Fatalf("got %d verdicts, want 8", len(verdicts))
	}
}

// TestEngineDrain: admission stops immediately at Close, but every
// admitted event still receives a verdict.
func TestEngineDrain(t *testing.T) {
	f := sharedFixture(t)
	engine, err := NewEngine(f.ex, f.clf, EngineConfig{Shards: 2, QueueSize: 256}, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]VerdictRecord, 4)
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = engine.ClassifyBatch(context.Background(), f.replay[g*20:(g+1)*20])
		}(g)
	}
	wg.Wait()
	engine.Close()
	for g := 0; g < 4; g++ {
		if errs[g] != nil {
			t.Fatalf("pre-drain batch %d: %v", g, errs[g])
		}
		for _, v := range results[g] {
			if v.Verdict == "" {
				t.Fatalf("batch %d: dropped response %+v", g, v)
			}
		}
	}
	if _, err := engine.ClassifyBatch(context.Background(), f.replay[:1]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain error = %v, want ErrDraining", err)
	}
}

// TestServerEndpoints exercises the HTTP surface end to end through the
// Client: classify, healthz, metrics, reload, and rejection paths.
func TestServerEndpoints(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 256})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := &Client{BaseURL: ts.URL}

	verdicts, err := client.Classify(ctx, f.replay[:40])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range verdicts {
		if got, want := v.Key(), offlineKey(t, f, f.clf, &f.replay[i]); got != want {
			t.Fatalf("event %d: streamed %q, offline %q", i, got, want)
		}
	}

	health, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}
	if health["generation"] != float64(1) {
		t.Fatalf("healthz generation = %v, want 1", health["generation"])
	}

	var rules bytes.Buffer
	if err := ExportRules(&rules, f.clf); err != nil {
		t.Fatal(err)
	}
	gen, err := client.Reload(ctx, rules.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("reload generation = %d, want 2", gen)
	}

	metrics, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"longtail_requests_total{result=\"accepted\"}",
		"longtail_events_total 40",
		"longtail_reloads_total 1",
		"longtail_reload_generation 2",
		"longtail_queue_depth 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, metrics)
		}
	}

	// Malformed bodies are 400s, counted, and never crash the engine.
	resp, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader("{\"type\":\"bogus\"}\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus record status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty rule set reload status = %d, want 400", resp.StatusCode)
	}
	if engine.Metrics().BadRequests.Load() != 2 {
		t.Fatalf("BadRequests = %d, want 2", engine.Metrics().BadRequests.Load())
	}
}

// TestServerBackpressure429 drives the queue to overflow through the
// raw HTTP path and checks the 429 + Retry-After contract.
func TestServerBackpressure429(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 1, QueueSize: 4})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var body bytes.Buffer
	for i := 0; i < 5; i++ {
		line, err := export.MarshalEventLine(&f.replay[i])
		if err != nil {
			t.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/classify", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if engine.Metrics().RequestsRejected.Load() != 1 {
		t.Fatalf("RequestsRejected = %d, want 1", engine.Metrics().RequestsRejected.Load())
	}
}

// TestHistogram checks bucket routing and the exposition invariants.
func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	h.Observe(2 * time.Second) // lands in +Inf
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	var buf bytes.Buffer
	h.write(&buf, "x", "s")
	out := buf.String()
	if !strings.Contains(out, "x_bucket{stage=\"s\",le=\"+Inf\"} 3") {
		t.Fatalf("cumulative +Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, "x_count{stage=\"s\"} 3") {
		t.Fatalf("count line wrong:\n%s", out)
	}
}
