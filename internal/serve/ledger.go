package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/journal"
)

// Journal record kinds used by the ledger. An accept record carries a
// request ID plus the batch's event lines; a result record carries the
// same ID plus the verdict lines served for it. Payloads reuse the wire
// format verbatim: `id\n` followed by one line-JSON record per line, so
// a journal segment is greppable with the same tooling as a dataset
// file or a /classify body.
const (
	recAccept byte = 1
	recResult byte = 2
)

// Ledger is the exactly-once verdict ledger: a write-ahead journal of
// accepted /classify batches keyed by client-supplied request IDs.
//
// The protocol, per batch:
//
//  1. Accept(id, events) — journaled durably (fsync, group-committed)
//     BEFORE any response bytes leave the server. A batch the client
//     was told about can therefore never vanish in a crash.
//  2. Result(id, verdicts) — journaled asynchronously. Losing a result
//     record in a crash is harmless: recovery finds the accept with no
//     result and replays the batch through the (deterministic) engine,
//     regenerating byte-identical verdicts.
//  3. Retransmits of an already-resulted ID are answered from the
//     ledger (Lookup) without reclassification, so a response lost on
//     the wire never double-counts events in the FP/TP accounting.
type Ledger struct {
	j *journal.Sharded

	mu      sync.Mutex
	pending map[string][]dataset.DownloadEvent // guarded by mu
	// results maps request ID -> the exact response body served for it;
	// guarded by mu.
	// (verdict lines, '\n'-terminated). Storing the batch as one opaque
	// byte blob instead of parsed records keeps the dedup state nearly
	// invisible to the garbage collector — a long-lived daemon holds one
	// pointer per batch, not one per verdict field — and makes
	// retransmit replies byte-identical by construction.
	results map[string][]byte
	// order lists result IDs oldest-completed first (guarded by mu) — the eviction queue
	// bounding results at maxResults entries, so a long-running daemon's
	// dedup state (and every compaction snapshot) stays O(retransmit
	// window), not O(total request history).
	order      []string
	maxResults int
	// stateBytes approximates the snapshot size: the summed length of
	// retained response bodies (guarded by mu). lastSnapshotBytes is the
	// size of the most recent compaction snapshot; the compaction
	// trigger scales with it — see Result.
	stateBytes        int64
	lastSnapshotBytes int64

	// compactBytes triggers snapshot+compaction once that many bytes
	// have been journaled since the last compaction (-1 = never).
	compactBytes int64
}

// LedgerOptions configures OpenLedger.
type LedgerOptions struct {
	// Journal configures the underlying write-ahead log; Dir is
	// required.
	Journal journal.Options
	// Shards stripes the journal over this many independent WALs, each
	// with its own group-commit sync loop, so accept fsyncs overlap
	// across cores (journal.OpenSharded). Request IDs pick the shard by
	// FNV affinity; recovery merges all shards by global sequence.
	// Values <= 1 keep the flat single-WAL on-disk format; a directory
	// already sharded on disk can only grow the count.
	Shards int
	// CompactBytes compacts the journal (snapshot of the full ledger
	// state, then segment truncation) whenever the bytes journaled since
	// the last compaction — cumulative across segment rotations, not the
	// size of any one segment — exceed this threshold. Default 32 MiB;
	// negative disables.
	CompactBytes int64
	// MaxResults bounds how many completed batches the dedup cache
	// retains; beyond it the oldest-completed results are evicted.
	// Size it to the client retransmit window: a retransmit of an
	// evicted ID is re-accepted and reclassified (deterministically,
	// so the verdicts match) instead of being answered from the ledger.
	// Default 65536; negative disables eviction.
	MaxResults int
}

// LedgerRecovery reports what OpenLedger reconstructed from disk.
type LedgerRecovery struct {
	// Pending maps request IDs that were accepted but have no journaled
	// result — the batches a restarted daemon must replay through the
	// engine (RecoverLedger does exactly that).
	Pending map[string][]dataset.DownloadEvent
	// Results is how many completed batches were recovered.
	Results int
	// TornTail is the number of bytes of unacknowledged torn tail the
	// journal discarded (nonzero after a kill -9 mid-write).
	TornTail int64
}

// ledgerSnapshot is the compaction snapshot: the full dedup state,
// serialized with sorted keys so identical ledgers snapshot to
// identical bytes. Results carry each batch's response body verbatim.
type ledgerSnapshot struct {
	Results map[string]string   `json:"results"`
	Pending map[string][]string `json:"pending"`
}

// OpenLedger opens (or creates) the journal in opts.Journal.Dir and
// reconstructs the ledger state a previous process left behind.
func OpenLedger(opts LedgerOptions) (*Ledger, *LedgerRecovery, error) {
	j, rec, err := journal.OpenSharded(opts.Journal, opts.Shards)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: ledger: %w", err)
	}
	l := &Ledger{
		j:            j,
		pending:      make(map[string][]dataset.DownloadEvent),
		results:      make(map[string][]byte),
		compactBytes: opts.CompactBytes,
		maxResults:   opts.MaxResults,
	}
	if l.compactBytes == 0 {
		l.compactBytes = 32 << 20
	}
	if l.maxResults == 0 {
		l.maxResults = 65536
	}
	if rec.Snapshot != nil {
		l.lastSnapshotBytes = int64(len(rec.Snapshot))
		var snap ledgerSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("serve: ledger snapshot: %w", err)
		}
		// A snapshot loses completion order, so restore in sorted-ID
		// order: deterministic across restarts, which is what matters
		// for a bound that only approximates "oldest first".
		ids := make([]string, 0, len(snap.Results))
		for id := range snap.Results {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			l.storeResultLocked(id, []byte(snap.Results[id]))
		}
		for id, strLines := range snap.Pending {
			lines := make([][]byte, len(strLines))
			for i, s := range strLines {
				lines[i] = []byte(s)
			}
			events, err := parseEventLines(lines)
			if err != nil {
				j.Close()
				return nil, nil, fmt.Errorf("serve: ledger snapshot %s: %w", id, err)
			}
			l.pending[id] = events
		}
	}
	for _, r := range rec.Records {
		switch r.Kind {
		case recAccept:
			id, lines, err := splitPayload(r.Data)
			if err != nil {
				j.Close()
				return nil, nil, fmt.Errorf("serve: ledger replay: %w", err)
			}
			if _, done := l.results[id]; done {
				continue // duplicate accept of an already-resulted batch
			}
			events, err := parseEventLines(lines)
			if err != nil {
				j.Close()
				return nil, nil, fmt.Errorf("serve: ledger replay %s: %w", id, err)
			}
			l.pending[id] = events
		case recResult:
			// A result payload is `id\n` + the response body verbatim —
			// no parsing needed, the blob is served as-is on dedup.
			idx := bytes.IndexByte(r.Data, '\n')
			if idx <= 0 {
				j.Close()
				return nil, nil, fmt.Errorf("serve: ledger replay: result without id line")
			}
			id := string(r.Data[:idx])
			l.storeResultLocked(id, r.Data[idx+1:])
			delete(l.pending, id)
		default:
			j.Close()
			return nil, nil, fmt.Errorf("serve: ledger replay: unknown record kind %d", r.Kind)
		}
	}
	out := &LedgerRecovery{
		Pending:  make(map[string][]dataset.DownloadEvent, len(l.pending)),
		Results:  len(l.results),
		TornTail: rec.TornTail,
	}
	for id, ev := range l.pending {
		out.Pending[id] = ev
	}
	return l, out, nil
}

// splitPayload splits a journaled `id\n` + line-JSON payload.
func splitPayload(data []byte) (string, [][]byte, error) {
	idx := bytes.IndexByte(data, '\n')
	if idx < 0 {
		return "", nil, fmt.Errorf("payload without id line")
	}
	id := string(data[:idx])
	if id == "" {
		return "", nil, fmt.Errorf("empty request id")
	}
	var lines [][]byte
	for _, line := range bytes.Split(data[idx+1:], []byte{'\n'}) {
		if len(line) > 0 {
			lines = append(lines, line)
		}
	}
	return id, lines, nil
}

func parseEventLines(lines [][]byte) ([]dataset.DownloadEvent, error) {
	events := make([]dataset.DownloadEvent, 0, len(lines))
	for _, line := range lines {
		ev, err := export.UnmarshalEventLine(line)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

func parseVerdictLines(lines [][]byte) ([]VerdictRecord, error) {
	verdicts := make([]VerdictRecord, 0, len(lines))
	for _, line := range lines {
		var v VerdictRecord
		if err := json.Unmarshal(line, &v); err != nil {
			return nil, err
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}

// storeResultLocked records the response body served for id and evicts
// the oldest-completed batches once more than maxResults are retained.
// Callers hold l.mu (or, during OpenLedger, have exclusive access).
// Evicted IDs keep their journal records until the next compaction's
// snapshot drops them, but recovery replays through this same bound, so
// a restart cannot resurrect an unbounded history either.
func (l *Ledger) storeResultLocked(id string, body []byte) {
	if prev, ok := l.results[id]; !ok {
		l.order = append(l.order, id)
	} else {
		l.stateBytes -= int64(len(prev))
	}
	l.results[id] = body
	l.stateBytes += int64(len(body))
	if l.maxResults <= 0 {
		return
	}
	for len(l.order) > l.maxResults {
		l.stateBytes -= int64(len(l.results[l.order[0]]))
		delete(l.results, l.order[0])
		l.order[0] = "" // release the string so the sliced-off slot doesn't pin it
		l.order = l.order[1:]
	}
}

// Accept journals a batch durably under its request ID and marks it
// pending. It returns only after the record is fsynced (group-committed
// with concurrent accepts); on journal failure the in-memory pending
// mark is rolled back so a retransmit can try again cleanly.
func (l *Ledger) Accept(id string, events []dataset.DownloadEvent) error {
	lines := make([][]byte, len(events))
	for i := range events {
		line, err := export.MarshalEventLine(&events[i])
		if err != nil {
			return fmt.Errorf("serve: ledger accept %s: %w", id, err)
		}
		lines[i] = line
	}
	return l.acceptFunc(id, events, func(dst []byte) []byte {
		for _, line := range lines {
			dst = append(dst, line...)
			dst = append(dst, '\n')
		}
		return dst
	})
}

// AcceptWire is Accept for the serving hot path: body is the batch's
// own wire bytes (the non-empty line-JSON event lines of the request,
// '\n'-terminated), journaled verbatim instead of re-marshaling events.
// body and events must describe the same batch.
func (l *Ledger) AcceptWire(id string, events []dataset.DownloadEvent, body string) error {
	return l.acceptFunc(id, events, func(dst []byte) []byte {
		return append(dst, body...)
	})
}

// acceptFunc marks id pending and journals `id\n` + whatever body
// appends, rendered straight into the journal's frame buffer — the
// accept path allocates nothing beyond the pending-map entry.
func (l *Ledger) acceptFunc(id string, events []dataset.DownloadEvent, body func(dst []byte) []byte) error {
	if id == "" {
		return fmt.Errorf("serve: ledger: empty request id")
	}
	l.mu.Lock()
	if _, done := l.results[id]; done {
		l.mu.Unlock()
		return nil // already served; caller will hit Lookup
	}
	l.pending[id] = events
	l.mu.Unlock()
	err := l.j.AppendFunc(id, recAccept, func(dst []byte) []byte {
		dst = append(dst, id...)
		dst = append(dst, '\n')
		return body(dst)
	})
	if err != nil {
		l.mu.Lock()
		delete(l.pending, id)
		l.mu.Unlock()
		return fmt.Errorf("serve: ledger accept %s: %w", id, err)
	}
	return nil
}

// Result journals the verdicts served for id (asynchronously — a lost
// result record is re-derived by recovery) and resolves the pending
// mark. The first result for an ID wins; a concurrent duplicate (e.g. a
// retransmit raced through classification) is dropped, keeping the
// accounting exactly-once. The returned body is the response to serve
// for id — the winner's bytes, identical across retransmits.
func (l *Ledger) Result(id string, verdicts []VerdictRecord) ([]byte, error) {
	// Rendered by the same append encoder writeVerdicts uses, so the
	// journaled body a dedup replay serves is byte-identical to what a
	// stateless response would have been.
	body := appendVerdictBody(make([]byte, 0, verdictBodySize(verdicts)), verdicts)
	l.mu.Lock()
	if prev, done := l.results[id]; done {
		l.mu.Unlock()
		return prev, nil
	}
	l.storeResultLocked(id, body)
	delete(l.pending, id)
	lastSnap := l.lastSnapshotBytes
	l.mu.Unlock()
	err := l.j.AppendAsyncFunc(id, recResult, func(dst []byte) []byte {
		dst = append(dst, id...)
		dst = append(dst, '\n')
		return append(dst, body...)
	})
	if err != nil {
		return body, fmt.Errorf("serve: ledger result %s: %w", id, err)
	}
	// Compaction trigger: the log/state-ratio rule. A compaction's cost
	// is one full snapshot — O(stateBytes) of encode, write and fsync —
	// so firing it every fixed CompactBytes makes the amortized cost per
	// request grow linearly with the retained dedup window. Requiring
	// the log to also outgrow a multiple of the LAST snapshot's size
	// bounds the amortized snapshot cost per journaled byte by a
	// constant, at the price of a bounded extra replay debt. Comparing
	// against the previous snapshot (not the live state) keeps the
	// trigger live: the log grows without bound between compactions
	// while the reference size stays fixed, so compaction always
	// eventually fires even when state grows as fast as the log.
	if threshold := l.compactBytes; threshold > 0 {
		if p := compactSnapshotFactor * lastSnap; p > threshold {
			threshold = p
		}
		if l.j.LiveBytes() > threshold {
			return body, l.Compact()
		}
	}
	return body, nil
}

// compactSnapshotFactor is the log/snapshot ratio that arms compaction:
// the journal must exceed both CompactBytes and this multiple of the
// previous snapshot's size. 4 keeps the amortized snapshot cost under
// ~25% of the bytes-proportional journaling work while capping the
// recovery replay at 4x the snapshot it would load anyway.
const compactSnapshotFactor = 4

// Lookup returns the response body journaled for id, if the batch
// completed.
func (l *Ledger) Lookup(id string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.results[id]
	return v, ok
}

// LookupVerdicts parses the journaled response body for id back into
// verdict records — the introspection/testing counterpart of Lookup.
func (l *Ledger) LookupVerdicts(id string) ([]VerdictRecord, bool) {
	body, ok := l.Lookup(id)
	if !ok {
		return nil, false
	}
	var lines [][]byte
	for _, line := range bytes.Split(body, []byte{'\n'}) {
		if len(line) > 0 {
			lines = append(lines, line)
		}
	}
	verdicts, err := parseVerdictLines(lines)
	if err != nil {
		return nil, false
	}
	return verdicts, true
}

// IsPending reports whether id was accepted but has no result yet.
func (l *Ledger) IsPending(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.pending[id]
	return ok
}

// PendingEvents returns the journaled events for a pending id (nil if
// resolved or unknown).
func (l *Ledger) PendingEvents(id string) []dataset.DownloadEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending[id]
}

// PendingIDs returns the pending request IDs in sorted order, so
// recovery replays are deterministic.
func (l *Ledger) PendingIDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.pending))
	for id := range l.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CompletedIDs returns the request IDs with journaled results, in
// sorted order — the lifecycle harvester's entry point for draining
// served ground truth deterministically.
func (l *Ledger) CompletedIDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.results))
	for id := range l.results {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Counts returns (pending, completed) batch counts.
func (l *Ledger) Counts() (pending, completed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending), len(l.results)
}

// Compact snapshots the full ledger state into the journal and drops
// the segments the snapshot covers. The capture runs via
// journal.CompactStaged: under the journal's write lock (with l.mu
// also held) it takes a shallow clone of the state maps — response
// bodies and pending event slices are immutable once stored, so
// cloning the map headers pins a consistent snapshot — and the
// O(stateBytes) encode then runs with serving traffic flowing. No
// Accept can slip a record into a to-be-deleted segment after the
// clone is taken, so every durable batch is either in the snapshot or
// in a segment that survives — the exactly-once contract holds across
// compaction. (Lock order is journal → ledger; Accept and Result never
// append while holding l.mu, so this cannot deadlock.)
func (l *Ledger) Compact() error {
	return l.j.CompactStaged(func() (func() ([]byte, error), error) {
		l.mu.Lock()
		results := make(map[string][]byte, len(l.results))
		for id, body := range l.results {
			results[id] = body
		}
		pending := make(map[string][]dataset.DownloadEvent, len(l.pending))
		for id, events := range l.pending {
			pending[id] = events
		}
		l.mu.Unlock()
		return func() ([]byte, error) {
			snap, err := appendSnapshot(results, pending)
			if err == nil {
				l.mu.Lock()
				l.lastSnapshotBytes = int64(len(snap))
				l.mu.Unlock()
			}
			return snap, err
		}, nil
	})
}

// appendSnapshot serializes the ledger state by hand into the
// ledgerSnapshot JSON shape OpenLedger decodes with encoding/json.
// Compaction cost scales with the retained dedup window (every response
// body is re-serialized into the snapshot), so this path matters: the
// reflective json.Marshal of the intermediate string maps made each
// compaction a multi-hundred-millisecond stall on a loaded ledger,
// most of it copying bodies into throwaway strings. Keys are emitted
// sorted, so identical ledgers still snapshot to identical bytes.
func appendSnapshot(results map[string][]byte, pending map[string][]dataset.DownloadEvent) ([]byte, error) {
	size := 64
	for id, v := range results {
		// Verdict-line bodies escape to roughly +10% (a quote or two
		// per ten bytes); undershooting here costs a full re-copy of a
		// many-megabyte buffer on the final growth.
		size += len(id) + len(v) + len(v)/8 + 8
	}
	for id, events := range pending {
		size += len(id) + len(events)*160 + 8
	}
	dst := make([]byte, 0, size)
	dst = append(dst, `{"results":{`...)
	ids := make([]string, 0, len(results))
	for id := range results {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i, id := range ids {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = export.AppendJSONString(dst, id)
		dst = append(dst, ':')
		dst = export.AppendJSONBytes(dst, results[id])
	}
	dst = append(dst, `},"pending":{`...)
	ids = ids[:0]
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i, id := range ids {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = export.AppendJSONString(dst, id)
		dst = append(dst, `:[`...)
		for j := range pending[id] {
			line, err := export.MarshalEventLine(&pending[id][j])
			if err != nil {
				return nil, fmt.Errorf("serve: ledger compact: %w", err)
			}
			if j > 0 {
				dst = append(dst, ',')
			}
			dst = export.AppendJSONBytes(dst, line)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `}}`...)
	return dst, nil
}

// Stats exposes the underlying journal counters, aggregated across
// shards.
func (l *Ledger) Stats() journal.Stats { return l.j.Stats() }

// JournalMetrics snapshots everything /metrics exposes about the commit
// path: aggregate counters, per-shard counters and ack-queue lag, and
// the group-commit batch-size histogram.
func (l *Ledger) JournalMetrics() JournalMetrics {
	return JournalMetrics{
		Stats:     l.j.Stats(),
		Shards:    l.j.ShardStats(),
		Lag:       l.j.ShardLag(),
		SyncBatch: l.j.SyncBatches(),
	}
}

// Close syncs and closes the journal. Idempotent.
func (l *Ledger) Close() error { return l.j.Close() }

// RecoverLedger replays every pending (accepted-but-unresulted) batch
// from a crash through the engine and journals the regenerated results:
// the boot-time half of the exactly-once contract. Classification is
// deterministic, so the replayed verdicts are byte-identical to the
// ones the dead process would have served. Returns the number of
// batches replayed.
func RecoverLedger(engine *Engine, l *Ledger, rec *LedgerRecovery) (int, error) {
	if rec == nil || len(rec.Pending) == 0 {
		return 0, nil
	}
	replayed := 0
	for _, id := range l.PendingIDs() {
		events := l.PendingEvents(id)
		if events == nil {
			continue
		}
		verdicts, err := engine.ClassifyBatch(context.Background(), events)
		if err != nil {
			return replayed, fmt.Errorf("serve: recover %s: %w", id, err)
		}
		if _, err := l.Result(id, verdicts); err != nil {
			return replayed, err
		}
		replayed++
	}
	return replayed, nil
}
