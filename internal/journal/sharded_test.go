package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

// reopenSharded recovers dir with the given shard count, failing the
// test on error.
func reopenSharded(t *testing.T, dir string, shards int) (*Sharded, *Recovered) {
	t.Helper()
	s, rec, err := OpenSharded(Options{Dir: dir}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

// TestShardedFlatCompat: shards=1 on a directory with no sharded state
// is byte-identical to the single WAL — what OpenSharded writes, Open
// recovers, and vice versa, with no shard directories created.
func TestShardedFlatCompat(t *testing.T) {
	dir := t.TempDir()
	s, rec := reopenSharded(t, dir, 1)
	if !s.flat {
		t.Fatal("shards=1 on a fresh dir did not open in flat mode")
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	for i := 0; i < 30; i++ {
		if err := s.Append(fmt.Sprintf("key-%d", i), 1, []byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The flat reader must see exactly the same records: no sequence
	// prefixes, no shard subdirectories.
	j, rec2 := reopen(t, dir)
	defer j.Close()
	if len(rec2.Records) != 30 {
		t.Fatalf("flat Open recovered %d records from a shards=1 journal, want 30", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if string(r.Data) != fmt.Sprintf("rec-%02d", i) {
			t.Fatalf("record %d = %q: shards=1 is not byte-compatible with the flat format", i, r.Data)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("flat mode created directory %s", e.Name())
		}
	}
}

// TestShardedRecoversLegacyFlatJournal: a journal written by the flat
// single-WAL code recovers through OpenSharded — first unchanged at
// shards=1, then as the pre-migration history at shards>1, ordered
// before everything appended sharded.
func TestShardedRecoversLegacyFlatJournal(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("flat-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, rec := reopenSharded(t, dir, 3)
	if s.flat {
		t.Fatal("shards=3 opened in flat mode")
	}
	if len(rec.Records) != 10 {
		t.Fatalf("sharded open recovered %d legacy records, want 10", len(rec.Records))
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(fmt.Sprintf("key-%d", i), 2, []byte(fmt.Sprintf("sharded-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Mid-migration recovery: flat history strictly first, sharded
	// records after it, both in append order.
	_, rec2 := reopenSharded(t, dir, 3)
	if len(rec2.Records) != 15 {
		t.Fatalf("recovered %d records, want 15", len(rec2.Records))
	}
	for i := 0; i < 10; i++ {
		if string(rec2.Records[i].Data) != fmt.Sprintf("flat-%d", i) {
			t.Fatalf("record %d = %q, want the legacy flat history first", i, rec2.Records[i].Data)
		}
	}
	for i := 0; i < 5; i++ {
		if string(rec2.Records[10+i].Data) != fmt.Sprintf("sharded-%d", i) {
			t.Fatalf("record %d = %q, want sharded records in append order", 10+i, rec2.Records[10+i].Data)
		}
	}
}

// appendKeyed appends count records with deterministic keys and
// payloads and returns, per shard, the global indices routed to it.
func appendKeyed(t *testing.T, s *Sharded, n, count int) [][]int {
	t.Helper()
	perShard := make([][]int, n)
	for i := 0; i < count; i++ {
		key := fmt.Sprintf("k-%03d", i)
		if err := s.Append(key, byte(1+i%3), []byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
		si := ShardIndex(key, n)
		perShard[si] = append(perShard[si], i)
	}
	return perShard
}

// TestShardedMergeEqualsSingleWAL: the same (kind, payload) sequence fed
// to a 4-shard journal and to a single WAL recovers to identical
// records in identical order — the merge by sequence number is
// equivalent to one file's physical order.
func TestShardedMergeEqualsSingleWAL(t *testing.T) {
	const count = 60
	shardedDir, flatDir := t.TempDir(), t.TempDir()
	s, _ := reopenSharded(t, shardedDir, 4)
	ref, _, err := Open(Options{Dir: flatDir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		kind, payload := byte(1+i%3), []byte(fmt.Sprintf("rec-%04d", i))
		if err := s.Append(fmt.Sprintf("k-%03d", i), kind, payload); err != nil {
			t.Fatal(err)
		}
		if err := ref.Append(kind, payload); err != nil {
			t.Fatal(err)
		}
	}
	// The stripes must actually spread: a single hot shard would make
	// the merge trivially file-ordered.
	busy := 0
	for _, st := range s.ShardStats() {
		if st.Appends > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards received records; the merge test is vacuous", busy)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	_, srec := reopenSharded(t, shardedDir, 4)
	_, frec := reopen(t, flatDir)
	if len(srec.Records) != len(frec.Records) {
		t.Fatalf("sharded recovered %d records, single WAL %d", len(srec.Records), len(frec.Records))
	}
	for i := range srec.Records {
		if srec.Records[i].Kind != frec.Records[i].Kind || !bytes.Equal(srec.Records[i].Data, frec.Records[i].Data) {
			t.Fatalf("record %d diverges: sharded %d %q, flat %d %q", i,
				srec.Records[i].Kind, srec.Records[i].Data, frec.Records[i].Kind, frec.Records[i].Data)
		}
	}
}

// truncateShardTail cuts n bytes off the newest segment in shard si's
// directory — the on-disk shape of a crash that tore that shard's tail.
func truncateShardTail(t *testing.T, dir string, si int, n int64) {
	t.Helper()
	sdir := filepath.Join(dir, shardDirName(si))
	entries, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		var idx uint64
		if cnt, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); cnt == 1 {
			newest = filepath.Join(sdir, e.Name())
		}
	}
	if newest == "" {
		t.Fatalf("shard %d has no segment to tear", si)
	}
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= n {
		t.Fatalf("shard %d segment is %d bytes, cannot tear %d", si, fi.Size(), n)
	}
	if err := os.Truncate(newest, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTornTailsOnTwoShards: tearing the tails of two shards
// loses exactly those shards' trailing records — every other record
// survives, and the merge keeps the survivors in global append order.
func TestShardedTornTailsOnTwoShards(t *testing.T) {
	const n, count = 4, 60
	dir := t.TempDir()
	s, _ := reopenSharded(t, dir, n)
	perShard := appendKeyed(t, s, n, count)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the two busiest shards. Each record frame is
	// frameHeaderSize + kind + 8-byte sequence + 8-byte payload = 25
	// bytes; cutting 2 frames + 3 bytes tears a third frame mid-payload,
	// so each torn shard loses exactly its last 3 records.
	const frameSize = frameHeaderSize + 1 + 8 + 8
	torn := []int{-1, -1}
	for si := range perShard {
		if torn[0] < 0 || len(perShard[si]) > len(perShard[torn[0]]) {
			torn[1] = torn[0]
			torn[0] = si
		} else if torn[1] < 0 || len(perShard[si]) > len(perShard[torn[1]]) {
			torn[1] = si
		}
	}
	lost := make(map[int]bool)
	for _, si := range torn {
		if len(perShard[si]) < 4 {
			t.Fatalf("shard %d holds only %d records; pick a bigger corpus", si, len(perShard[si]))
		}
		truncateShardTail(t, dir, si, 2*frameSize+3)
		ids := perShard[si]
		for _, id := range ids[len(ids)-3:] {
			lost[id] = true
		}
	}

	_, rec := reopenSharded(t, dir, n)
	if rec.TornTail == 0 {
		t.Fatal("mid-frame truncation not reported as torn bytes")
	}
	var want []int
	for i := 0; i < count; i++ {
		if !lost[i] {
			want = append(want, i)
		}
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d (all minus the 6 torn-off)", len(rec.Records), len(want))
	}
	for pos, id := range want {
		r := rec.Records[pos]
		if r.Kind != byte(1+id%3) || string(r.Data) != fmt.Sprintf("rec-%04d", id) {
			t.Fatalf("position %d = kind %d %q, want record %d: merge lost order", pos, r.Kind, r.Data, id)
		}
	}
}

// TestShardedCrashDurablePrefix: under an injected crash filesystem,
// every record Append acknowledged as durable survives recovery across
// all shards, in order; async records may be lost but never corrupt the
// merge.
func TestShardedCrashDurablePrefix(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 11, TornWriteRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const n = 3
	s, _, err := OpenSharded(Options{
		Dir:      dir,
		OpenFile: func(path string) (File, error) { return fs.Open(path) },
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Append(fmt.Sprintf("k-%03d", i), 1, []byte(fmt.Sprintf("durable-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := s.AppendAsync(fmt.Sprintf("a-%03d", i), 2, []byte(fmt.Sprintf("volatile-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopenSharded(t, dir, n)
	durable := 0
	for _, r := range rec.Records {
		if r.Kind == 1 {
			if string(r.Data) != fmt.Sprintf("durable-%02d", durable) {
				t.Fatalf("durable record %d = %q: lost or reordered", durable, r.Data)
			}
			durable++
		}
	}
	if durable != 40 {
		t.Fatalf("recovered %d durable records, want all 40 acknowledged ones", durable)
	}
}

// TestShardedCompaction: a sharded compaction collapses every shard's
// history (and any legacy flat files) into one root snapshot; recovery
// sees the snapshot plus only post-compaction records, and the covered
// files are gone.
func TestShardedCompaction(t *testing.T) {
	dir := t.TempDir()
	// Legacy flat history first, so the compaction also exercises the
	// migration cleanup.
	j, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("flat-old")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	const n = 3
	s, _ := reopenSharded(t, dir, n)
	appendKeyed(t, s, n, 20)
	if err := s.Compact([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	if lb := s.LiveBytes(); lb != 0 {
		t.Fatalf("LiveBytes = %d after Compact, want 0", lb)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(fmt.Sprintf("post-%d", i), 2, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := reopenSharded(t, dir, n)
	if string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d post-snapshot records, want 4", len(rec.Records))
	}
	for i, r := range rec.Records {
		if string(r.Data) != fmt.Sprintf("new-%d", i) {
			t.Fatalf("post-snapshot record %d = %q", i, r.Data)
		}
	}
	// The migration cleanup must have removed the flat-format files; the
	// snapshot's state observed their replay.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		var idx uint64
		if cnt, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); cnt == 1 {
			t.Fatalf("compaction left legacy flat segment %s behind", e.Name())
		}
		if cnt, _ := fmt.Sscanf(e.Name(), "state-%08d.snap", &idx); cnt == 1 {
			t.Fatalf("compaction left legacy flat snapshot %s behind", e.Name())
		}
	}
}

// TestShardedTornSnapshotSkipped: a snapshot file torn by a crash
// mid-compaction is skipped; recovery falls back to the newest valid
// snapshot and the records it does not cover.
func TestShardedTornSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	const n = 2
	s, _ := reopenSharded(t, dir, n)
	appendKeyed(t, s, n, 10)
	if err := s.Compact([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("after", 2, []byte("post-snap")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot that never finished: garbage bytes under a
	// higher index.
	if err := os.WriteFile(filepath.Join(dir, shardedSnapshotName(99)), []byte("torn-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := reopenSharded(t, dir, n)
	if string(rec.Snapshot) != "good-state" {
		t.Fatalf("snapshot = %q, want the older valid snapshot", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "post-snap" {
		t.Fatalf("recovered %+v, want exactly the post-snapshot record", rec.Records)
	}
}

// TestShardedShardCountGrowth: reopening with a higher shard count
// keeps every record (placement never moves, the merge makes it
// irrelevant) and routes new appends over the wider stripe set; an
// explicit lower count is overridden by the directories on disk.
func TestShardedShardCountGrowth(t *testing.T) {
	dir := t.TempDir()
	s, _ := reopenSharded(t, dir, 2)
	appendKeyed(t, s, 2, 30)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s4, rec := reopenSharded(t, dir, 4)
	if got := s4.Shards(); got != 4 {
		t.Fatalf("Shards() = %d after growth, want 4", got)
	}
	if len(rec.Records) != 30 {
		t.Fatalf("recovered %d records after growth, want 30", len(rec.Records))
	}
	for i := 30; i < 50; i++ {
		if err := s4.Append(fmt.Sprintf("k-%03d", i), byte(1+i%3), []byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s4.Close(); err != nil {
		t.Fatal(err)
	}

	// shards=1 cannot shrink a striped journal: the directories win.
	s1, rec2 := reopenSharded(t, dir, 1)
	defer s1.Close()
	if got := s1.Shards(); got != 4 {
		t.Fatalf("Shards() = %d when reopened with shards=1, want the on-disk 4", got)
	}
	if len(rec2.Records) != 50 {
		t.Fatalf("recovered %d records, want 50", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if string(r.Data) != fmt.Sprintf("rec-%04d", i) {
			t.Fatalf("record %d = %q: growth broke the global order", i, r.Data)
		}
	}
}

// TestShardedGroupCommitAcrossShards: concurrent keyed appends share
// fsyncs within each shard (the ack queue batches them) and the
// batch-size histogram sees multi-record syncs.
func TestShardedGroupCommitAcrossShards(t *testing.T) {
	dir := t.TempDir()
	const n = 2
	s, _, err := OpenSharded(Options{
		Dir: dir,
		OpenFile: func(path string) (File, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &slowSyncFile{f: f}, nil
		},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				if err := s.Append(fmt.Sprintf("w%d-%03d", w, i), 1, []byte(fmt.Sprintf("w%d-%03d", w, i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("no group commit: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	bs := s.SyncBatches()
	if bs.Count == 0 || bs.Sum != uint64(writers*perWriter) {
		t.Fatalf("batch histogram count=%d sum=%d, want sum %d", bs.Count, bs.Sum, writers*perWriter)
	}
	if lag := s.ShardLag(); len(lag) != n {
		t.Fatalf("ShardLag returned %d shards, want %d", len(lag), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopenSharded(t, dir, n)
	if len(rec.Records) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*perWriter)
	}
}
