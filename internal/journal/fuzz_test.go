package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecovery feeds arbitrary bytes to recovery as the contents
// of a segment file — the on-disk state an adversarial crash (torn
// write, bit rot, truncation) could leave behind. Two properties must
// hold for any input:
//
//  1. recovery never panics and never reports more discarded bytes than
//     the file holds;
//  2. every record recovery returns is one it would accept again — the
//     recovered prefix, re-appended to a fresh journal, recovers to the
//     exact same records. A record that round-trips differently (or not
//     at all) would mean recovery acknowledged data the next recovery
//     rejects, which is precisely the silent-loss bug the WAL exists to
//     prevent.
func FuzzJournalRecovery(f *testing.F) {
	var valid []byte
	for i := 0; i < 5; i++ {
		valid = append(valid, encodeFrame(Record{Kind: byte(i%3 + 1), Data: []byte(fmt.Sprintf("record-%d", i))})...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-frame
	f.Add(valid[:frameHeaderSize-1])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xff // corrupt the first payload byte under the CRC
	f.Add(flipped)
	short := append([]byte(nil), valid...)
	short[0] = 0xff // length field pointing past the end
	f.Add(short)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded corpus: oversized input")
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("recovery failed on corrupt-but-readable input: %v", err)
		}
		j.Close()
		if rec.TornTail < 0 || rec.TornTail > int64(len(data)) {
			t.Fatalf("torn tail %d outside [0, %d]", rec.TornTail, len(data))
		}

		// Round trip: what recovery acknowledged must recover identically.
		dir2 := t.TempDir()
		j2, _, err := Open(Options{Dir: dir2})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rec.Records {
			if err := j2.Append(r.Kind, r.Data); err != nil {
				t.Fatalf("recovered record rejected on re-append: %v", err)
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, rec2, err := Open(Options{Dir: dir2})
		if err != nil {
			t.Fatalf("re-recovery failed: %v", err)
		}
		j3.Close()
		if len(rec2.Records) != len(rec.Records) {
			t.Fatalf("round trip lost records: %d recovered, %d after re-append", len(rec.Records), len(rec2.Records))
		}
		for i := range rec.Records {
			if rec.Records[i].Kind != rec2.Records[i].Kind || !bytes.Equal(rec.Records[i].Data, rec2.Records[i].Data) {
				t.Fatalf("record %d changed across the round trip", i)
			}
		}
		if rec2.TornTail != 0 {
			t.Fatalf("clean re-append recovered a torn tail of %d bytes", rec2.TornTail)
		}
	})
}
