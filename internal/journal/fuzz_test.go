package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecovery feeds arbitrary bytes to recovery as the contents
// of a segment file — the on-disk state an adversarial crash (torn
// write, bit rot, truncation) could leave behind. Two properties must
// hold for any input:
//
//  1. recovery never panics and never reports more discarded bytes than
//     the file holds;
//  2. every record recovery returns is one it would accept again — the
//     recovered prefix, re-appended to a fresh journal, recovers to the
//     exact same records. A record that round-trips differently (or not
//     at all) would mean recovery acknowledged data the next recovery
//     rejects, which is precisely the silent-loss bug the WAL exists to
//     prevent.
func FuzzJournalRecovery(f *testing.F) {
	var valid []byte
	for i := 0; i < 5; i++ {
		valid = append(valid, encodeFrame(Record{Kind: byte(i%3 + 1), Data: []byte(fmt.Sprintf("record-%d", i))})...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-frame
	f.Add(valid[:frameHeaderSize-1])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xff // corrupt the first payload byte under the CRC
	f.Add(flipped)
	short := append([]byte(nil), valid...)
	short[0] = 0xff // length field pointing past the end
	f.Add(short)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded corpus: oversized input")
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("recovery failed on corrupt-but-readable input: %v", err)
		}
		j.Close()
		if rec.TornTail < 0 || rec.TornTail > int64(len(data)) {
			t.Fatalf("torn tail %d outside [0, %d]", rec.TornTail, len(data))
		}

		// Round trip: what recovery acknowledged must recover identically.
		dir2 := t.TempDir()
		j2, _, err := Open(Options{Dir: dir2})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rec.Records {
			if err := j2.Append(r.Kind, r.Data); err != nil {
				t.Fatalf("recovered record rejected on re-append: %v", err)
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, rec2, err := Open(Options{Dir: dir2})
		if err != nil {
			t.Fatalf("re-recovery failed: %v", err)
		}
		j3.Close()
		if len(rec2.Records) != len(rec.Records) {
			t.Fatalf("round trip lost records: %d recovered, %d after re-append", len(rec.Records), len(rec2.Records))
		}
		for i := range rec.Records {
			if rec.Records[i].Kind != rec2.Records[i].Kind || !bytes.Equal(rec.Records[i].Data, rec2.Records[i].Data) {
				t.Fatalf("record %d changed across the round trip", i)
			}
		}
		if rec2.TornTail != 0 {
			t.Fatalf("clean re-append recovered a torn tail of %d bytes", rec2.TornTail)
		}
	})
}

// FuzzShardedRecovery drives the sharded merge with arbitrary shard
// counts, record sequences and torn-tail subsets. Properties, for any
// input:
//
//  1. with no tears, sharded recovery returns exactly the records a
//     single-WAL reference fed the same (kind, payload) sequence
//     recovers, in the same order;
//  2. with tails torn off any subset of shards, the survivors are a
//     subsequence of the appended order (the merge never reorders),
//     every untorn shard's records all survive, and each torn shard
//     loses only a suffix of its own records — exactly the guarantee
//     a single WAL gives for its one tail, per shard.
func FuzzShardedRecovery(f *testing.F) {
	f.Add(uint8(3), uint8(24), uint8(0), uint8(9))
	f.Add(uint8(4), uint8(40), uint8(0b0101), uint8(17))
	f.Add(uint8(1), uint8(10), uint8(1), uint8(3))
	f.Add(uint8(6), uint8(63), uint8(0xff), uint8(60))
	f.Fuzz(func(t *testing.T, shardsRaw, countRaw, tornMask, tearRaw uint8) {
		n := int(shardsRaw%6) + 1
		count := int(countRaw % 64)
		dir, refDir := t.TempDir(), t.TempDir()
		s, _, err := OpenSharded(Options{Dir: dir}, n)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := Open(Options{Dir: refDir})
		if err != nil {
			t.Fatal(err)
		}
		nEff := s.Shards()
		perShard := make(map[int][]int)
		for i := 0; i < count; i++ {
			key := fmt.Sprintf("key-%d", i)
			kind, payload := byte(1+i%3), []byte(fmt.Sprintf("r-%03d", i))
			if err := s.Append(key, kind, payload); err != nil {
				t.Fatal(err)
			}
			if err := ref.Append(kind, payload); err != nil {
				t.Fatal(err)
			}
			si := ShardIndex(key, nEff)
			if s.flat {
				si = 0
			}
			perShard[si] = append(perShard[si], i)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}

		// Tear the tails of the masked shards (flat mode tears the root
		// segment — one "shard").
		tear := int64(tearRaw%40) + 1
		torn := make(map[int]bool)
		for si := 0; si < nEff; si++ {
			if tornMask&(1<<uint(si%8)) == 0 || len(perShard[si]) == 0 {
				continue
			}
			sdir := dir
			if !s.flat {
				sdir = filepath.Join(dir, shardDirName(si))
			}
			entries, err := os.ReadDir(sdir)
			if err != nil {
				t.Fatal(err)
			}
			var newest string
			for _, e := range entries {
				var idx uint64
				if cnt, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); cnt == 1 {
					newest = filepath.Join(sdir, e.Name())
				}
			}
			if newest == "" {
				continue
			}
			fi, err := os.Stat(newest)
			if err != nil {
				t.Fatal(err)
			}
			cut := tear
			if cut >= fi.Size() {
				cut = fi.Size()
			}
			if err := os.Truncate(newest, fi.Size()-cut); err != nil {
				t.Fatal(err)
			}
			torn[si] = true
		}

		s2, rec, err := OpenSharded(Options{Dir: dir}, n)
		if err != nil {
			t.Fatal(err)
		}
		s2.Close()

		// Decode the survivors back to global indices.
		got := make([]int, len(rec.Records))
		for i, r := range rec.Records {
			var id int
			if cnt, _ := fmt.Sscanf(string(r.Data), "r-%03d", &id); cnt != 1 {
				t.Fatalf("recovered unrecognizable record %q", r.Data)
			}
			if r.Kind != byte(1+id%3) {
				t.Fatalf("record %d recovered with kind %d", id, r.Kind)
			}
			got[i] = id
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("merge reordered: index %d after %d", got[i], got[i-1])
			}
		}
		survived := make(map[int]bool, len(got))
		for _, id := range got {
			survived[id] = true
		}
		for si, ids := range perShard {
			if !torn[si] {
				for _, id := range ids {
					if !survived[id] {
						t.Fatalf("record %d lost from untorn shard %d", id, si)
					}
				}
				continue
			}
			// A torn shard keeps a prefix of its own records.
			tail := false
			for _, id := range ids {
				if !survived[id] {
					tail = true
				} else if tail {
					t.Fatalf("torn shard %d lost record mid-stream, then recovered %d after it", si, id)
				}
			}
		}

		if len(torn) == 0 {
			// No tears: exact equality with the single-WAL reference.
			refJ, refRec, err := Open(Options{Dir: refDir})
			if err != nil {
				t.Fatal(err)
			}
			refJ.Close()
			if len(rec.Records) != len(refRec.Records) {
				t.Fatalf("sharded recovered %d records, single-WAL reference %d", len(rec.Records), len(refRec.Records))
			}
			for i := range rec.Records {
				if rec.Records[i].Kind != refRec.Records[i].Kind || !bytes.Equal(rec.Records[i].Data, refRec.Records[i].Data) {
					t.Fatalf("record %d diverges from the single-WAL reference", i)
				}
			}
		}
	})
}
