//go:build linux

package journal

import "syscall"

// datasync flushes f's data (and the metadata needed to retrieve it,
// i.e. the file size — fdatasync's contract) without forcing the inode
// timestamp update a full fsync pays for. Appends and the commit path
// only ever need the data and the size, and on ext4 the saved metadata
// journal commit is worth ~15% of the sync latency per group commit.
// Files that don't expose a descriptor (the fault-injection wrappers in
// internal/faults) keep their own Sync semantics.
func datasync(f File) error {
	type fder interface{ Fd() uintptr }
	ff, ok := f.(fder)
	if !ok {
		return f.Sync()
	}
	fd := int(ff.Fd())
	for {
		err := syscall.Fdatasync(fd)
		if err != syscall.EINTR {
			return err
		}
	}
}
