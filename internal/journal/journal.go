// Package journal is an append-only, CRC-checked write-ahead log: the
// durability substrate of the serving layer. The paper's operational
// mode classifies a continuous stream of unknown download events, and
// the FP/TP accounting the whole system is judged on is only as good as
// the event ledger underneath it — losing an accepted batch in a crash,
// or double-counting a retransmitted one, silently corrupts the 0.1%
// false-positive budget. The journal makes the ingest path
// durable-by-construction: a record acknowledged by Append survives any
// subsequent kill -9, and recovery reads back exactly the acknowledged
// prefix, discarding at most an unacknowledged torn tail.
//
// Layout: a directory of numbered segment files, each a sequence of
// frames `[u32 payload length][u32 CRC-32C][1-byte kind][data]` (little
// endian, CRC over kind+data). A snapshot file (same framing, one
// frame) captures compacted state; Compact writes the snapshot, rotates
// to a fresh segment and deletes the segments the snapshot covers.
// Recovery loads the newest valid snapshot and replays every later
// segment in order, stopping at the first torn or corrupt frame — the
// standard WAL contract under torn writes.
//
// Durability: Append is group-committed. Writes land in the segment
// under one lock; the fsync is taken by whichever appender gets there
// first and covers every record written before it, so N concurrent
// appenders share one fsync instead of paying N. AppendAsync skips the
// wait entirely for records the caller can re-derive (the serving
// layer's verdict records, which deterministic re-classification
// regenerates on recovery).
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// frameHeaderSize is the fixed per-record overhead: payload length and
// CRC-32C, each 4 bytes little endian.
const frameHeaderSize = 8

// maxFrameSize bounds one record (matches the serving layer's request
// budget) so a corrupt length field cannot drive a huge allocation.
const maxFrameSize = 1 << 26

// castagnoli is the CRC-32C table (the polynomial storage systems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is what the journal writes segments through. *os.File satisfies
// it; internal/faults decorates it with torn-write and partial-fsync
// injection for crash tests.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a journal. The zero value of every field selects a
// default; Dir is required.
type Options struct {
	// Dir holds the segment and snapshot files; it is created if absent.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// OpenFile creates segment/snapshot files for writing; nil selects
	// os.Create. Fault-injection tests substitute a crashable file here.
	OpenFile func(path string) (File, error)
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 8 << 20
}

func (o Options) openFile(path string) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.Create(path)
}

// Record is one journaled entry: a caller-defined kind tag and opaque
// payload bytes.
type Record struct {
	Kind byte
	Data []byte
}

// Recovered is what Open found on disk: the newest valid snapshot (nil
// if none) and every acknowledged record appended after it, in order.
type Recovered struct {
	// Snapshot is the payload passed to the most recent valid Compact.
	Snapshot []byte
	// Records are the post-snapshot records, oldest first.
	Records []Record
	// TornTail counts bytes discarded at the end of the newest segment
	// because they formed an incomplete or CRC-failing frame — the
	// expected signature of a crash between write and fsync.
	TornTail int64
	// Segments is how many segment files were replayed.
	Segments int
}

// Stats counts what the journal did, for /metrics exposition.
type Stats struct {
	Appends     uint64
	Syncs       uint64
	Rotations   uint64
	Compactions uint64
	Bytes       uint64
}

// SyncBatchBounds are the upper bounds (records acked per fsync) of the
// group-commit batch-size histogram, roughly doubling; the implicit
// final bucket is +Inf. A healthy commit path under load shows mass in
// the middle buckets — every fsync retiring many accepts — while mass
// pinned at 1 means appenders are paying per-record fsyncs.
var SyncBatchBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// syncBatchBuckets is len(SyncBatchBounds) plus the +Inf bucket.
const syncBatchBuckets = 10

// BatchStats is a snapshot of the acked-records-per-fsync histogram.
type BatchStats struct {
	// Buckets holds per-bucket (non-cumulative) observation counts,
	// one per SyncBatchBounds entry plus the +Inf bucket.
	Buckets [syncBatchBuckets]uint64
	// Sum is the total records acked across all fsyncs; Count is the
	// number of fsyncs that advanced the durable high-water mark.
	Sum   uint64
	Count uint64
}

// add folds another snapshot into s (for aggregating across shards).
func (s *BatchStats) add(o BatchStats) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	opts Options

	mu        sync.Mutex // guards the write path and segment rotation
	seg       File       // guarded by mu
	segIndex  uint64     // guarded by mu
	segBytes  int64      // guarded by mu
	liveBytes int64      // guarded by mu; bytes appended since the last compaction, across rotations
	frameBuf  []byte     // guarded by mu; reusable frame scratch, so steady-state appends allocate nothing

	// appendSeq counts records written (not necessarily durable). It is
	// only advanced under mu but read lock-free by the sync loop and the
	// lag gauge, hence atomic.
	appendSeq atomic.Uint64

	// syncMu serializes the fsync itself; group commit happens here.
	// syncStateMu is a separate, never-held-during-IO lock over
	// (syncSeg, syncHi) so appenders keep writing while an fsync is in
	// flight — that in-flight window is where commit groups form.
	// Lock order: mu → syncMu → syncStateMu.
	syncMu      sync.Mutex
	syncStateMu sync.Mutex
	syncedSeq   atomic.Uint64
	syncSeg     File   // guarded by syncStateMu; segment the next fsync applies to
	syncHi      uint64 // guarded by syncStateMu; appendSeq covered once syncSeg syncs

	// The group-commit acknowledgment queue: with the sync loop running
	// (StartSyncLoop), durable appenders never fsync themselves — they
	// enqueue (write the record) and park on ackCond until the loop's
	// next completed fsync covers their sequence number, so one fsync
	// acks a whole batch of accepts. ackMu is taken only around condvar
	// state, never across I/O; lock order is mu → syncMu → ackMu.
	ackMu     sync.Mutex
	ackCond   *sync.Cond    // broadcast under ackMu whenever syncedSeq advances or the loop stops/fails
	wakeCond  *sync.Cond    // signaled under ackMu when an appender is waiting on durability
	loopOn    bool          // guarded by ackMu
	loopStop  bool          // guarded by ackMu
	loopErr   error         // guarded by ackMu; last sync-loop fsync error
	loopErrHi uint64        // guarded by ackMu; appendSeq the failed fsync attempted to cover
	loopDone  chan struct{} // guarded by ackMu (the reference; closed by the loop itself)

	appends     atomic.Uint64
	syncs       atomic.Uint64
	rotations   atomic.Uint64
	compactions atomic.Uint64
	bytes       atomic.Uint64

	batchCounts [syncBatchBuckets]atomic.Uint64
	batchSum    atomic.Uint64
	batchN      atomic.Uint64

	closeOnce  sync.Once
	closeErr   error
	closed     atomic.Bool
	compacting atomic.Bool // single-flight latch for CompactStaged
}

// Open recovers whatever a previous process left in opts.Dir and opens
// a fresh segment for appending. It never appends to a pre-existing
// segment, so a torn tail from a crash can never be followed by new
// valid frames.
func Open(opts Options) (*Journal, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("journal: empty dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec, lastSeg, err := recover_(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	j, err := newJournal(opts, lastSeg, segmentDiskBytes(opts.Dir))
	if err != nil {
		return nil, nil, err
	}
	return j, rec, nil
}

// newJournal constructs an open journal appending to segment lastSeg+1,
// with liveBytes seeding the compaction-debt counter. Recovery has
// already happened (Open) or is orchestrated by the caller (OpenSharded).
func newJournal(opts Options, lastSeg uint64, liveBytes int64) (*Journal, error) {
	j := &Journal{opts: opts, segIndex: lastSeg + 1, liveBytes: liveBytes}
	j.ackCond = sync.NewCond(&j.ackMu)
	j.wakeCond = sync.NewCond(&j.ackMu)
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// segmentDiskBytes sums the on-disk segment sizes, seeding liveBytes at
// Open: a process restarting on top of a long un-compacted history
// should reach its compaction threshold immediately, not after another
// threshold's worth of fresh appends.
func segmentDiskBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n != 1 {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

func segmentName(index uint64) string  { return fmt.Sprintf("wal-%08d.seg", index) }
func snapshotName(index uint64) string { return fmt.Sprintf("state-%08d.snap", index) }

// openSegmentLocked creates the segment file for j.segIndex. Callers
// hold j.mu or have exclusive access.
func (j *Journal) openSegmentLocked() error {
	f, err := j.opts.openFile(filepath.Join(j.opts.Dir, segmentName(j.segIndex)))
	if err != nil {
		return fmt.Errorf("journal: open segment %d: %w", j.segIndex, err)
	}
	j.seg = f
	j.segBytes = 0
	j.syncStateMu.Lock()
	j.syncSeg = f
	j.syncHi = j.appendSeq.Load()
	j.syncStateMu.Unlock()
	return nil
}

// encodeFrame renders one record as a framed byte slice.
func encodeFrame(r Record) []byte {
	return AppendFrame(make([]byte, 0, frameHeaderSize+1+len(r.Data)), r.Kind, r.Data)
}

// AppendFrame appends one record to dst in the journal's frame encoding
// — `[u32 payload length][u32 CRC-32C][kind][data]`, CRC over
// kind+data — and returns the extended slice. It is the byte-stream
// counterpart of Append: anything framed with it round-trips through
// DecodeFrames, so subsystems that ship journal-shaped records over
// other channels (the serving layer's ledger handoff chunks) share the
// WAL's corruption detection instead of inventing their own.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, kind)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(dst[off:off+4], uint32(1+len(payload)))
	binary.LittleEndian.PutUint32(dst[off+4:off+8], crc32.Checksum(dst[off+frameHeaderSize:], castagnoli))
	return dst
}

// DecodeFrames parses a byte stream of frames produced by AppendFrame
// (or read back from a segment file), returning the valid record prefix
// and how many trailing bytes did not form a complete, CRC-clean frame.
// Record payloads are copied out of data, so the caller may reuse the
// buffer. A non-zero tail means truncation or corruption: a torn crash
// tail when reading a segment, a damaged chunk when receiving a
// handoff transfer.
func DecodeFrames(data []byte) (recs []Record, tail int64) {
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return recs, int64(len(rest))
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n == 0 || n > maxFrameSize || int64(frameHeaderSize)+int64(n) > int64(len(rest)) {
			return recs, int64(len(rest))
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, int64(len(rest))
		}
		recs = append(recs, Record{Kind: payload[0], Data: append([]byte(nil), payload[1:]...)})
		off += int64(frameHeaderSize) + int64(n)
	}
	return recs, 0
}

// write appends one frame to the active segment (rotating first if the
// segment is full) and returns the record's sequence number.
func (j *Journal) write(r Record) (uint64, error) {
	return j.writeFunc(r.Kind, func(dst []byte) []byte { return append(dst, r.Data...) })
}

// writeFunc is write with the payload rendered by the caller directly
// into the journal's reusable frame buffer: build appends the payload
// bytes to dst and returns the extended slice. One copy total — no
// intermediate payload or frame allocations — which is what keeps the
// serving hot path's accept records allocation-free. build runs under
// the journal lock and must not call back into the journal.
func (j *Journal) writeFunc(kind byte, build func(dst []byte) []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed.Load() {
		return 0, fmt.Errorf("journal: closed")
	}
	buf := append(j.frameBuf[:0], 0, 0, 0, 0, 0, 0, 0, 0, kind)
	buf = build(buf)
	j.frameBuf = buf[:0] // retain the grown capacity across calls
	// Enforce the frame bound on the write side too: readFrames treats a
	// length above maxFrameSize as corruption and stops replaying, so an
	// oversized record must never be acknowledged as durable — it would
	// silently take the rest of its segment down with it at recovery.
	payloadLen := len(buf) - frameHeaderSize
	if payloadLen > maxFrameSize {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds frame limit %d", payloadLen-1, maxFrameSize-1)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[frameHeaderSize:], castagnoli))
	frame := buf
	if j.segBytes > 0 && j.segBytes+int64(len(frame)) > j.opts.segmentBytes() {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := j.seg.Write(frame); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	j.segBytes += int64(len(frame))
	j.liveBytes += int64(len(frame))
	seq := j.appendSeq.Add(1)
	j.appends.Add(1)
	j.bytes.Add(uint64(len(frame)))
	// Publish the high-water mark the next fsync of this segment covers.
	// Only syncStateMu is needed, so this never blocks on an in-flight
	// fsync — concurrent appends landing here are the commit group the
	// current fsync holder's successor will cover in one sync.
	j.syncStateMu.Lock()
	j.syncHi = seq
	j.syncStateMu.Unlock()
	return seq, nil
}

// rotateLocked seals the active segment (fsync + close, so everything
// in it is durable) and opens the next one. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if err := j.seg.Sync(); err != nil {
		return fmt.Errorf("journal: rotate sync: %w", err)
	}
	j.syncs.Add(1)
	if err := j.seg.Close(); err != nil {
		return fmt.Errorf("journal: rotate close: %w", err)
	}
	j.advanceSynced(j.appendSeq.Load())
	j.segIndex++
	j.rotations.Add(1)
	f, err := j.opts.openFile(filepath.Join(j.opts.Dir, segmentName(j.segIndex)))
	if err != nil {
		return fmt.Errorf("journal: open segment %d: %w", j.segIndex, err)
	}
	j.seg = f
	j.segBytes = 0
	j.syncStateMu.Lock()
	j.syncSeg = f
	j.syncHi = j.appendSeq.Load()
	j.syncStateMu.Unlock()
	return nil
}

// advanceSynced publishes hi as the durable high-water mark, records
// the group-commit batch size it retired, and wakes every ack-queue
// waiter whose record it covers. Callers hold syncMu (the only place
// syncedSeq advances), so the load-compare-store is race-free.
func (j *Journal) advanceSynced(hi uint64) {
	prev := j.syncedSeq.Load()
	if hi <= prev {
		return
	}
	j.syncedSeq.Store(hi)
	j.recordSyncBatch(hi - prev)
	j.ackMu.Lock()
	j.ackCond.Broadcast()
	j.ackMu.Unlock()
}

// recordSyncBatch observes one fsync that retired n records.
func (j *Journal) recordSyncBatch(n uint64) {
	i := 0
	for i < len(SyncBatchBounds) && n > SyncBatchBounds[i] {
		i++
	}
	j.batchCounts[i].Add(1)
	j.batchSum.Add(n)
	j.batchN.Add(1)
}

// SyncBatches returns a snapshot of the acked-per-fsync histogram.
func (j *Journal) SyncBatches() BatchStats {
	var s BatchStats
	for i := range j.batchCounts {
		s.Buckets[i] = j.batchCounts[i].Load()
	}
	s.Sum = j.batchSum.Load()
	s.Count = j.batchN.Load()
	return s
}

// SyncLag returns how many appended records are not yet durable — the
// depth of the acknowledgment queue.
func (j *Journal) SyncLag() uint64 {
	// Load the durable mark first: appendSeq only grows, so racing the
	// two loads this way can only over-report lag, never underflow.
	synced := j.syncedSeq.Load()
	appended := j.appendSeq.Load()
	if appended <= synced {
		return 0
	}
	return appended - synced
}

// StartSyncLoop starts the journal's background group-commit loop:
// from then on, durable appends enqueue and park until the loop's next
// completed fsync acks them in batch, instead of competing to fsync
// themselves. Idempotent; the loop stops at Close. Without the loop the
// journal keeps the caller-driven group commit (whoever reaches the
// fsync first syncs for everyone), which is the right shape for
// single-writer callers that cannot amortize an extra goroutine.
func (j *Journal) StartSyncLoop() {
	j.ackMu.Lock()
	if j.loopOn || j.closed.Load() {
		j.ackMu.Unlock()
		return
	}
	j.loopOn = true
	j.loopStop = false
	j.loopDone = make(chan struct{})
	done := j.loopDone
	j.ackMu.Unlock()
	go j.syncLoop(done)
}

// syncLoop is the group-commit worker: wait until at least one appender
// parks on the ack queue, fsync once to the current append high-water
// mark, broadcast, repeat. An fsync failure is delivered to exactly the
// waiters it attempted to cover (their sequence numbers are <= the
// captured high-water mark); the loop then parks until new appends
// arrive rather than hot-retrying a failing device. Terminates when
// stopSyncLoop (via Close) sets loopStop; done is closed on exit so the
// stopper can join.
func (j *Journal) syncLoop(done chan struct{}) {
	defer close(done)
	var failedHi uint64
	for {
		j.ackMu.Lock()
		for !j.loopStop {
			appended := j.appendSeq.Load()
			if appended > j.syncedSeq.Load() && appended > failedHi {
				break
			}
			j.wakeCond.Wait()
		}
		if j.loopStop {
			j.ackMu.Unlock()
			return
		}
		j.ackMu.Unlock()
		hi := j.appendSeq.Load()
		if err := j.syncTo(hi); err != nil {
			failedHi = hi
			j.ackMu.Lock()
			j.loopErr = err
			j.loopErrHi = hi
			j.ackCond.Broadcast()
			j.ackMu.Unlock()
			continue
		}
		failedHi = 0
	}
}

// stopSyncLoop stops the background loop and joins it, then wakes any
// parked waiters so they fall back to syncing themselves.
func (j *Journal) stopSyncLoop() {
	j.ackMu.Lock()
	if !j.loopOn {
		j.ackMu.Unlock()
		return
	}
	j.loopStop = true
	j.wakeCond.Signal()
	done := j.loopDone
	j.ackMu.Unlock()
	<-done
	j.ackMu.Lock()
	j.loopOn = false
	j.ackCond.Broadcast()
	j.ackMu.Unlock()
}

// waitDurable blocks until record seq is durable. With the sync loop
// running it enqueues on the acknowledgment queue (waking the loop) and
// is acked in batch by the next completed fsync; otherwise it takes the
// caller-driven group-commit path.
func (j *Journal) waitDurable(seq uint64) error {
	if j.syncedSeq.Load() >= seq {
		return nil // someone else's group commit already covered us
	}
	j.ackMu.Lock()
	if !j.loopOn {
		j.ackMu.Unlock()
		return j.syncTo(seq)
	}
	j.wakeCond.Signal()
	for j.syncedSeq.Load() < seq {
		if j.loopErr != nil && j.loopErrHi >= seq {
			err := j.loopErr
			j.ackMu.Unlock()
			return err
		}
		if j.loopStop || !j.loopOn {
			// The loop is shutting down with our record still queued;
			// settle it ourselves (Close's final sync usually already has).
			j.ackMu.Unlock()
			return j.syncTo(seq)
		}
		j.ackCond.Wait()
	}
	j.ackMu.Unlock()
	return nil
}

// Append writes a record and returns once it is durable. Concurrent
// appenders group-commit: with the sync loop running they are acked in
// batch by its next fsync; without it, whoever reaches the fsync first
// syncs for everyone written before it.
func (j *Journal) Append(kind byte, data []byte) error {
	seq, err := j.write(Record{Kind: kind, Data: data})
	if err != nil {
		return err
	}
	return j.waitDurable(seq)
}

// AppendAsync writes a record without waiting for durability. Use it
// only for records the caller can re-derive after a crash; they become
// durable with the next Append, Sync, rotation or Close.
func (j *Journal) AppendAsync(kind byte, data []byte) error {
	_, err := j.write(Record{Kind: kind, Data: data})
	return err
}

// AppendFunc is Append with the payload rendered by build directly into
// the journal's frame buffer (see writeFunc): durable on return, zero
// steady-state allocations. build must not call back into the journal.
func (j *Journal) AppendFunc(kind byte, build func(dst []byte) []byte) error {
	seq, err := j.writeFunc(kind, build)
	if err != nil {
		return err
	}
	return j.waitDurable(seq)
}

// AppendAsyncFunc is AppendAsync with the payload rendered by build
// directly into the journal's frame buffer. Same re-derivability caveat
// as AppendAsync; build must not call back into the journal.
func (j *Journal) AppendAsyncFunc(kind byte, build func(dst []byte) []byte) error {
	_, err := j.writeFunc(kind, build)
	return err
}

// Sync forces everything appended so far to durable storage.
func (j *Journal) Sync() error {
	return j.syncTo(j.appendSeq.Load())
}

// syncTo blocks until record seq is durable, fsyncing if needed.
func (j *Journal) syncTo(seq uint64) error {
	if j.syncedSeq.Load() >= seq {
		return nil // someone else's group commit already covered us
	}
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.syncedSeq.Load() >= seq {
		return nil // the previous holder's fsync covered our record
	}
	j.syncStateMu.Lock()
	f, hi := j.syncSeg, j.syncHi
	j.syncStateMu.Unlock()
	if err := datasync(f); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.syncs.Add(1)
	j.advanceSynced(hi)
	if j.syncedSeq.Load() < seq {
		// Only possible if the record was written to a newer segment
		// after we captured syncSeg; rotation syncs the old segment, so
		// one more pass over the current segment settles it.
		return fmt.Errorf("journal: sync: record %d not covered", seq)
	}
	return nil
}

// Compact captures the caller's state as a snapshot, rotates to a fresh
// segment and deletes every segment the snapshot covers. After a crash,
// recovery loads the snapshot and replays only the later segments.
//
// The snapshot must already dominate every appended record. If the
// caller's state and the journal are written concurrently (appends
// racing with the state mutation the snapshot serializes), use
// CompactFunc instead — a snapshot captured outside the journal lock
// can miss a record whose append lands before the rotation, and that
// record's only durable copy is then deleted.
func (j *Journal) Compact(snapshot []byte) error {
	return j.CompactFunc(func() ([]byte, error) { return snapshot, nil })
}

// CompactFunc is Compact with the state capture made atomic against the
// write path: capture runs under the journal's write lock, so no record
// can be appended between the moment the caller serializes its state
// and the rotation that seals the old segments. Everything capture
// observes is covered by the snapshot; everything it cannot observe
// lands in the fresh segment and survives the deletion. capture must
// not append to this journal (deadlock); an error from capture aborts
// the compaction with the journal unchanged.
//
// capture runs in full — including serialization — under the write
// lock. Callers whose state encodes to many megabytes should use
// CompactStaged instead, which only needs a cheap reference capture
// under the lock.
func (j *Journal) CompactFunc(capture func() ([]byte, error)) error {
	return j.CompactStaged(func() (func() ([]byte, error), error) {
		snapshot, err := capture()
		if err != nil {
			return nil, err
		}
		return func() ([]byte, error) { return snapshot, nil }, nil
	})
}

// CompactStaged is CompactFunc with the expensive serialization moved
// off the write lock. stage runs under the journal's write lock and
// should be cheap — capture references to (immutable) state and return
// an encode thunk. The journal then seals the active segment, releases
// the lock, and runs encode with appends flowing: every record stage
// could observe lives in a sealed segment the snapshot replaces, and
// every append that lands during encode goes to the fresh segment,
// which recovery replays on top of the snapshot. Compaction is
// single-flight: a call that finds one already running returns nil
// without compacting, since the in-flight snapshot already dominates
// everything this caller observed.
func (j *Journal) CompactStaged(stage func() (func() ([]byte, error), error)) error {
	if !j.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer j.compacting.Store(false)
	j.mu.Lock()
	if j.closed.Load() {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	encode, err := stage()
	if err != nil {
		j.mu.Unlock()
		return err
	}
	// Seal the active segment so the snapshot strictly dominates every
	// earlier record, and reset the live-log counter now: from here on
	// the live log is whatever lands in the fresh segment. (If the
	// snapshot write below fails, the sealed segments survive with the
	// counter already reset; the log is briefly under-counted, which
	// only delays the next trigger.)
	if err := j.rotateLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	snapIdx := j.segIndex
	covered := snapIdx - 1 // segments <= covered are now redundant
	j.liveBytes = 0
	j.mu.Unlock()

	snapshot, err := encode()
	if err != nil {
		return err
	}
	if 1+len(snapshot) > maxFrameSize {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds frame limit %d", len(snapshot), maxFrameSize-1)
	}
	path := filepath.Join(j.opts.Dir, snapshotName(snapIdx))
	tmp := path + ".tmp"
	f, err := j.opts.openFile(tmp)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Frame the snapshot without materializing header+payload in one
	// buffer — at tens of megabytes the encodeFrame copy would dwarf
	// the checksum itself.
	var hdr [frameHeaderSize + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(snapshot)))
	hdr[frameHeaderSize] = 0 // snapshot record kind
	crc := crc32.Update(crc32.Checksum(hdr[frameHeaderSize:], castagnoli), castagnoli, snapshot)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if _, err := f.Write(snapshot); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	j.compactions.Add(1)
	// Best-effort cleanup: a crash here leaves redundant-but-harmless
	// files that the next Compact retries.
	entries, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 && idx <= covered {
			os.Remove(filepath.Join(j.opts.Dir, e.Name()))
		}
		if n, _ := fmt.Sscanf(e.Name(), "state-%08d.snap", &idx); n == 1 && idx < snapIdx {
			os.Remove(filepath.Join(j.opts.Dir, e.Name()))
		}
	}
	return nil
}

// LiveBytes returns the bytes appended since the last compaction,
// accumulated across segment rotations (and seeded from the on-disk
// segments at Open) — the replay debt a crash right now would pay, and
// the number to compare against a compaction threshold. Unlike the
// active segment's size it is not capped by SegmentBytes, so a
// threshold larger than one segment is still reachable.
func (j *Journal) LiveBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.liveBytes
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() Stats {
	return Stats{
		Appends:     j.appends.Load(),
		Syncs:       j.syncs.Load(),
		Rotations:   j.rotations.Load(),
		Compactions: j.compactions.Load(),
		Bytes:       j.bytes.Load(),
	}
}

// Close stops the sync loop (if running), syncs and closes the active
// segment. Idempotent.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		j.stopSyncLoop()
		j.mu.Lock()
		defer j.mu.Unlock()
		j.closed.Store(true)
		j.syncMu.Lock()
		defer j.syncMu.Unlock()
		if err := j.seg.Sync(); err != nil {
			j.closeErr = err
		}
		if err := j.seg.Close(); err != nil && j.closeErr == nil {
			j.closeErr = err
		}
		if j.closeErr == nil {
			// Publish the final sync so late waiters settle without
			// touching the now-closed segment.
			j.advanceSynced(j.appendSeq.Load())
		}
	})
	return j.closeErr
}

// recover_ scans dir for the newest valid snapshot and replays every
// segment after it. Returns the recovered state and the highest segment
// index seen on disk (0 if none).
func recover_(dir string) (*Recovered, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var snapIdx []uint64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "state-%08d.snap", &idx); n == 1 {
			snapIdx = append(snapIdx, idx)
		}
	}
	sort.Slice(snapIdx, func(a, b int) bool { return snapIdx[a] > snapIdx[b] })

	var snapshot []byte
	var fromSeg uint64
	// Newest snapshot that parses wins; a torn snapshot (crash during
	// Compact before the rename) is simply skipped.
	for _, idx := range snapIdx {
		recs, torn, err := readFrames(filepath.Join(dir, snapshotName(idx)))
		if err != nil {
			return nil, 0, err
		}
		if len(recs) >= 1 && torn == 0 {
			snapshot = recs[0].Data
			fromSeg = idx
			break
		}
	}
	rec, lastSeg, err := replaySegments(dir, fromSeg)
	if err != nil {
		return nil, 0, err
	}
	rec.Snapshot = snapshot
	return rec, lastSeg, nil
}

// replaySegments replays the segment files in dir with index >= fromSeg
// in order, stopping after a torn frame that is not the final segment's
// crash tail. Returns the replayed records (Snapshot left nil) and the
// highest segment index present on disk (0 if none). The sharded
// journal calls this directly: its compaction snapshots live at the
// root, so per-shard replay boundaries arrive as an argument instead of
// being discovered from a local snapshot file.
func replaySegments(dir string, fromSeg uint64) (*Recovered, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var segIdx []uint64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 {
			segIdx = append(segIdx, idx)
		}
	}
	sort.Slice(segIdx, func(a, b int) bool { return segIdx[a] < segIdx[b] })

	rec := &Recovered{}
	lastSeg := uint64(0)
	if len(segIdx) > 0 {
		lastSeg = segIdx[len(segIdx)-1]
	}
	for _, idx := range segIdx {
		if idx < fromSeg {
			continue
		}
		recs, torn, err := readFrames(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			return nil, 0, err
		}
		rec.Records = append(rec.Records, recs...)
		rec.Segments++
		if torn > 0 {
			rec.TornTail += torn
			if idx != lastSeg {
				// A torn frame mid-history (not the crash tail) means
				// everything after it is unreadable; stop replaying.
				return rec, lastSeg, nil
			}
		}
	}
	return rec, lastSeg, nil
}

// readFrames parses one segment file, returning the valid record prefix
// and the number of torn/corrupt bytes discarded at the end.
func readFrames(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read %s: %w", filepath.Base(path), err)
	}
	recs, tail := DecodeFrames(data)
	return recs, tail, nil
}
