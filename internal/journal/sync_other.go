//go:build !linux

package journal

// datasync falls back to a full fsync on platforms without a usable
// fdatasync (see sync_linux.go for the fast path).
func datasync(f File) error { return f.Sync() }
