// Sharded journal: N independent WALs whose fsyncs overlap across
// cores. One journal serializes every durable accept behind a single
// fsync pipeline; at provider-scale feed rates (ROADMAP: "saturate the
// hardware") that one pipeline is the ceiling. The sharded journal
// splits the commit path by key — the ledger routes each event ID to a
// shard with the same FNV affinity the engine uses for its workers — so
// N group-commit sync loops run concurrently and the commit rate scales
// with spindles/flash queues instead of serializing on one file.
//
// Global ordering is preserved by a sequence number, not by file order:
// every sharded record's payload is prefixed with an 8-byte
// little-endian sequence drawn from one atomic counter (assigned inside
// the owning shard's write lock, so per-shard file order and sequence
// order agree). Recovery replays every shard's segments and merges the
// records by sequence — byte-equivalent to what a single WAL would have
// recovered, in the same order, minus whatever torn tails each shard
// lost past its own durable mark. Records a caller saw acknowledged
// were durable in their shard before the ack, so the merge never loses
// an acknowledged record no matter which subset of shards tore.
//
// Layout compatibility: with shards <= 1 and no shard directories on
// disk, OpenSharded degenerates to the flat single-WAL format —
// byte-identical to Open, no sequence prefixes — so existing journals
// keep working and single-shard deployments pay nothing. The first open
// with shards > 1 creates `shard-NNN/` subdirectories and starts
// appending there; pre-existing flat records are recovered first
// (they are strictly older than any sharded record) and the first
// sharded compaction migrates everything into a root-level
// `sharded-NNNNNNNN.snap` whose header records the shard count, the
// last assigned sequence and each shard's covered-segment boundary.
package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// shardedSnapMagic opens a sharded snapshot payload; the trailing digit
// versions the header layout.
const shardedSnapMagic = "lts1"

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

func shardedSnapshotName(index uint64) string {
	return fmt.Sprintf("sharded-%08d.snap", index)
}

// ShardIndex routes a key to one of n shards with FNV-1a — the same
// affinity the serving layer's engine uses to pin an event ID to a
// worker, so a ledger running one journal shard per engine shard keeps
// each ID's records on a single fsync pipeline.
func ShardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// Sharded is a write-ahead log striped over N shard journals, each with
// its own group-commit sync loop. All methods are safe for concurrent
// use. Appends are key-addressed: the key picks the shard, so records
// that must replay in order relative to each other (the ledger's accept
// and result for one event ID) share a key and therefore a shard.
type Sharded struct {
	opts   Options
	n      int
	flat   bool       // single-WAL compatibility mode: no prefixes, no shard dirs
	shards []*Journal // immutable after OpenSharded

	// seq is the global record sequence; the next record gets seq+1,
	// assigned inside the owning shard's write lock.
	seq atomic.Uint64

	// snapIdx is the newest sharded snapshot index; guarded by
	// compacting (only the single in-flight compaction advances it).
	snapIdx     uint64
	compacting  atomic.Bool
	compactions atomic.Uint64

	// legacyBytes counts flat-format bytes still in the root directory,
	// so pre-migration history keeps counting toward the caller's
	// compaction threshold until the first sharded snapshot deletes it.
	legacyBytes atomic.Int64
}

// OpenSharded recovers whatever a previous process left in opts.Dir —
// flat single-WAL layout, sharded layout, or a flat history mid-way
// through migration to sharded — and opens the journal with at least
// `shards` shards (existing shard directories can only raise the count;
// records never move between shards after the fact, the merge-by-
// sequence recovery makes the placement irrelevant). Every shard's
// group-commit sync loop is started, so appends are acked in batch.
func OpenSharded(opts Options, shards int) (*Sharded, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("journal: empty dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if shards < 1 {
		shards = 1
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	existing := 0
	var snapIdxs []uint64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "shard-%03d", &idx); n == 1 && e.IsDir() {
			if int(idx)+1 > existing {
				existing = int(idx) + 1
			}
		}
		if n, _ := fmt.Sscanf(e.Name(), "sharded-%08d.snap", &idx); n == 1 {
			snapIdxs = append(snapIdxs, idx)
		}
	}
	if shards == 1 && existing == 0 && len(snapIdxs) == 0 {
		// Flat compatibility mode: byte-identical to the single WAL.
		j, rec, err := Open(opts)
		if err != nil {
			return nil, nil, err
		}
		j.StartSyncLoop()
		return &Sharded{opts: opts, n: 1, flat: true, shards: []*Journal{j}}, rec, nil
	}
	n := shards
	if existing > n {
		n = existing
	}

	// Newest sharded snapshot that parses wins; a torn or truncated one
	// (crash during compaction before the rename) is skipped, exactly
	// like the flat journal's snapshot scan.
	sort.Slice(snapIdxs, func(a, b int) bool { return snapIdxs[a] > snapIdxs[b] })
	var snapState []byte
	var lastSeq uint64
	var snapFrom []uint64
	haveSnap := false
	for _, idx := range snapIdxs {
		recs, torn, err := readFrames(filepath.Join(opts.Dir, shardedSnapshotName(idx)))
		if err != nil {
			return nil, nil, err
		}
		if len(recs) < 1 || torn != 0 {
			continue
		}
		state, seq, from, err := parseShardedSnapshot(recs[0].Data)
		if err != nil {
			continue
		}
		snapState, lastSeq, snapFrom, haveSnap = state, seq, from, true
		break
	}
	if len(snapFrom) > n {
		n = len(snapFrom)
	}
	fromSeg := make([]uint64, n)
	copy(fromSeg, snapFrom)

	rec := &Recovered{Snapshot: snapState}
	if !haveSnap {
		// Flat history predating the migration (or no sharded snapshot
		// yet): every flat record is strictly older than every sharded
		// one, so it replays first. A sharded snapshot dominates the
		// flat files entirely — its compaction observed their replay.
		legacy, _, err := recover_(opts.Dir)
		if err != nil {
			return nil, nil, err
		}
		rec.Snapshot = legacy.Snapshot
		rec.Records = append(rec.Records, legacy.Records...)
		rec.TornTail += legacy.TornTail
		rec.Segments += legacy.Segments
	}

	s := &Sharded{opts: opts, n: n, shards: make([]*Journal, n)}
	s.legacyBytes.Store(segmentDiskBytes(opts.Dir))
	if len(snapIdxs) > 0 {
		s.snapIdx = snapIdxs[0] // slice is sorted descending
	}
	type seqRec struct {
		seq uint64
		r   Record
	}
	var merged []seqRec
	closeOpened := func() {
		for _, j := range s.shards {
			if j != nil {
				j.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		dir := filepath.Join(opts.Dir, shardDirName(i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			closeOpened()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		srec, lastSegI, err := replaySegments(dir, fromSeg[i])
		if err != nil {
			closeOpened()
			return nil, nil, err
		}
		for _, r := range srec.Records {
			if len(r.Data) < 8 {
				closeOpened()
				return nil, nil, fmt.Errorf("journal: shard %d: record below sequence-prefix size", i)
			}
			merged = append(merged, seqRec{
				seq: binary.LittleEndian.Uint64(r.Data[:8]),
				r:   Record{Kind: r.Kind, Data: r.Data[8:]},
			})
		}
		rec.TornTail += srec.TornTail
		rec.Segments += srec.Segments
		shardOpts := opts
		shardOpts.Dir = dir
		j, err := newJournal(shardOpts, lastSegI, segmentDiskBytes(dir))
		if err != nil {
			closeOpened()
			return nil, nil, err
		}
		s.shards[i] = j
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].seq < merged[b].seq })
	maxSeq := lastSeq
	for _, sr := range merged {
		rec.Records = append(rec.Records, sr.r)
		if sr.seq > maxSeq {
			maxSeq = sr.seq
		}
	}
	s.seq.Store(maxSeq)
	for _, j := range s.shards {
		j.StartSyncLoop()
	}
	return s, rec, nil
}

// parseShardedSnapshot splits a sharded snapshot payload into the
// caller state, the last assigned sequence and the per-shard
// covered-segment boundaries.
func parseShardedSnapshot(data []byte) (state []byte, lastSeq uint64, fromSeg []uint64, err error) {
	if len(data) < 16 || string(data[:4]) != shardedSnapMagic {
		return nil, 0, nil, fmt.Errorf("journal: not a sharded snapshot")
	}
	count := binary.LittleEndian.Uint32(data[4:8])
	lastSeq = binary.LittleEndian.Uint64(data[8:16])
	if count > 1<<16 || len(data) < 16+int(count)*8 {
		return nil, 0, nil, fmt.Errorf("journal: sharded snapshot header truncated")
	}
	fromSeg = make([]uint64, count)
	off := 16
	for i := range fromSeg {
		fromSeg[i] = binary.LittleEndian.Uint64(data[off : off+8])
		off += 8
	}
	return data[off:], lastSeq, fromSeg, nil
}

// Shards returns the shard count (1 in flat mode).
func (s *Sharded) Shards() int { return s.n }

// shard returns the journal owning key.
func (s *Sharded) shard(key string) *Journal {
	return s.shards[ShardIndex(key, s.n)]
}

// AppendFunc writes a record to key's shard and returns once it is
// durable — parked on the shard's acknowledgment queue and acked in
// batch by its sync loop's next fsync. build renders the payload
// directly into the shard's frame buffer (see Journal.AppendFunc) and
// must not call back into the journal.
func (s *Sharded) AppendFunc(key string, kind byte, build func(dst []byte) []byte) error {
	if s.flat {
		return s.shards[0].AppendFunc(kind, build)
	}
	j := s.shard(key)
	seq, err := j.writeFunc(kind, func(dst []byte) []byte {
		// The global sequence is drawn inside the shard's write lock, so
		// within a shard the file order and the sequence order agree —
		// the invariant the recovery merge depends on.
		dst = binary.LittleEndian.AppendUint64(dst, s.seq.Add(1))
		return build(dst)
	})
	if err != nil {
		return err
	}
	return j.waitDurable(seq)
}

// AppendAsyncFunc is AppendFunc without the durability wait, for records
// the caller can re-derive after a crash.
func (s *Sharded) AppendAsyncFunc(key string, kind byte, build func(dst []byte) []byte) error {
	if s.flat {
		return s.shards[0].AppendAsyncFunc(kind, build)
	}
	_, err := s.shard(key).writeFunc(kind, func(dst []byte) []byte {
		dst = binary.LittleEndian.AppendUint64(dst, s.seq.Add(1))
		return build(dst)
	})
	return err
}

// Append writes a record to key's shard and returns once it is durable.
func (s *Sharded) Append(key string, kind byte, data []byte) error {
	return s.AppendFunc(key, kind, func(dst []byte) []byte { return append(dst, data...) })
}

// AppendAsync writes a record to key's shard without waiting for
// durability.
func (s *Sharded) AppendAsync(key string, kind byte, data []byte) error {
	return s.AppendAsyncFunc(key, kind, func(dst []byte) []byte { return append(dst, data...) })
}

// Sync forces everything appended so far, on every shard, to durable
// storage.
func (s *Sharded) Sync() error {
	var first error
	for _, j := range s.shards {
		if err := j.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Compact captures snapshot as the new recovery baseline across every
// shard. Same domination caveat as Journal.Compact.
func (s *Sharded) Compact(snapshot []byte) error {
	return s.CompactFunc(func() ([]byte, error) { return snapshot, nil })
}

// CompactFunc is Compact with the state capture made atomic against the
// write path of every shard.
func (s *Sharded) CompactFunc(capture func() ([]byte, error)) error {
	return s.CompactStaged(func() (func() ([]byte, error), error) {
		snapshot, err := capture()
		if err != nil {
			return nil, err
		}
		return func() ([]byte, error) { return snapshot, nil }, nil
	})
}

// CompactStaged compacts the sharded journal: stage runs with every
// shard's write lock held (so the captured state dominates every record
// on every shard), each shard rotates to a fresh segment, and the
// encoded snapshot lands in one root-level file whose header records
// each shard's covered-segment boundary. Appends flow again as soon as
// the rotations finish — the encode and the snapshot write happen off
// the locks. Single-flight, like Journal.CompactStaged. The first
// sharded compaction also deletes any flat-format files left from
// before the migration: the snapshot's state observed their replay.
func (s *Sharded) CompactStaged(stage func() (func() ([]byte, error), error)) error {
	if s.flat {
		return s.shards[0].CompactStaged(stage)
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer s.compacting.Store(false)
	// Taking every shard's write lock in ascending shard order; the
	// fixed order means two compactions (already excluded by the latch)
	// or any future multi-shard path cannot deadlock.
	for _, j := range s.shards {
		j.mu.Lock()
	}
	unlock := func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}
	if s.shards[0].closed.Load() {
		unlock()
		return fmt.Errorf("journal: closed")
	}
	encode, err := stage()
	if err != nil {
		unlock()
		return err
	}
	fromSeg := make([]uint64, len(s.shards))
	for i, j := range s.shards {
		if err := j.rotateLocked(); err != nil {
			unlock()
			return err
		}
		fromSeg[i] = j.segIndex // segments below the fresh one are covered
		j.liveBytes = 0
	}
	// No append can be in flight with every write lock held, so this is
	// exactly the highest sequence the snapshot dominates.
	lastSeq := s.seq.Load()
	unlock()

	snapshot, err := encode()
	if err != nil {
		return err
	}
	header := 4 + 4 + 8 + 8*len(fromSeg)
	if 1+header+len(snapshot) > maxFrameSize {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds frame limit %d", len(snapshot), maxFrameSize-1)
	}
	payload := make([]byte, 0, header+len(snapshot))
	payload = append(payload, shardedSnapMagic...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(fromSeg)))
	payload = binary.LittleEndian.AppendUint64(payload, lastSeq)
	for _, fs := range fromSeg {
		payload = binary.LittleEndian.AppendUint64(payload, fs)
	}
	payload = append(payload, snapshot...)

	snapIdx := s.snapIdx + 1
	path := filepath.Join(s.opts.Dir, shardedSnapshotName(snapIdx))
	tmp := path + ".tmp"
	f, err := s.opts.openFile(tmp)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	frame := AppendFrame(make([]byte, 0, frameHeaderSize+1+len(payload)), 0, payload)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	s.snapIdx = snapIdx
	s.compactions.Add(1)
	s.legacyBytes.Store(0)

	// Best-effort cleanup — a crash anywhere below leaves redundant
	// files that recovery skips (the snapshot header carries every
	// shard's boundary) and the next compaction re-deletes.
	for i := range s.shards {
		dir := filepath.Join(s.opts.Dir, shardDirName(i))
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			var idx uint64
			if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 && idx < fromSeg[i] {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "sharded-%08d.snap", &idx); n == 1 && idx < snapIdx {
			os.Remove(filepath.Join(s.opts.Dir, e.Name()))
			continue
		}
		// Flat-format leftovers from before the migration.
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 {
			os.Remove(filepath.Join(s.opts.Dir, e.Name()))
			continue
		}
		if n, _ := fmt.Sscanf(e.Name(), "state-%08d.snap", &idx); n == 1 {
			os.Remove(filepath.Join(s.opts.Dir, e.Name()))
		}
	}
	return nil
}

// LiveBytes returns the bytes appended since the last compaction summed
// across shards, plus any flat-format history not yet migrated — the
// replay debt a crash right now would pay.
func (s *Sharded) LiveBytes() int64 {
	total := s.legacyBytes.Load()
	if s.flat {
		total = 0 // flat mode's journal seeds its own counter from disk
	}
	for _, j := range s.shards {
		total += j.LiveBytes()
	}
	return total
}

// Stats returns the journal counters aggregated across shards.
func (s *Sharded) Stats() Stats {
	if s.flat {
		return s.shards[0].Stats()
	}
	var agg Stats
	for _, j := range s.shards {
		st := j.Stats()
		agg.Appends += st.Appends
		agg.Syncs += st.Syncs
		agg.Rotations += st.Rotations
		agg.Compactions += st.Compactions
		agg.Bytes += st.Bytes
	}
	agg.Compactions += s.compactions.Load()
	return agg
}

// ShardStats returns each shard's counters, indexed by shard.
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, j := range s.shards {
		out[i] = j.Stats()
	}
	return out
}

// ShardLag returns each shard's acknowledgment-queue depth (appended
// but not yet durable records), indexed by shard.
func (s *Sharded) ShardLag() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, j := range s.shards {
		out[i] = j.SyncLag()
	}
	return out
}

// SyncBatches returns the acked-records-per-fsync histogram aggregated
// across shards.
func (s *Sharded) SyncBatches() BatchStats {
	var agg BatchStats
	for _, j := range s.shards {
		agg.add(j.SyncBatches())
	}
	return agg
}

// Close stops every shard's sync loop, syncs and closes every shard.
// Idempotent.
func (s *Sharded) Close() error {
	var first error
	for _, j := range s.shards {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
