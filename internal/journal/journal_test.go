package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// reopen closes nothing (simulating a crash) and recovers the dir.
func reopen(t *testing.T, dir string) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

// TestAppendRecoverRoundTrip: every acknowledged record survives a
// reopen, in order, with kind and payload intact.
func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(byte(1+i%3), []byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2 := reopen(t, dir)
	if len(rec2.Records) != 100 {
		t.Fatalf("recovered %d records, want 100", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Kind != byte(1+i%3) || string(r.Data) != fmt.Sprintf("rec-%03d", i) {
			t.Fatalf("record %d = kind %d %q", i, r.Kind, r.Data)
		}
	}
	if rec2.TornTail != 0 {
		t.Fatalf("clean close recovered torn tail of %d bytes", rec2.TornTail)
	}
}

// TestRecoveryAfterCrashDiscardsOnlyUnsyncedTail: synced records
// survive a kill -9 (with a torn tail of unsynced bytes on disk);
// async-appended records after the last sync may be lost but never
// corrupt recovery.
func TestRecoveryAfterCrashDiscardsOnlyUnsyncedTail(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 5, TornWriteRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, _, err := Open(Options{
		Dir:      dir,
		OpenFile: func(path string) (File, error) { return fs.Open(path) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("durable-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Unsynced tail: lost or torn at crash, never acknowledged.
	for i := 0; i < 20; i++ {
		if err := j.AppendAsync(2, []byte(fmt.Sprintf("volatile-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.TornKept == 0 {
		t.Fatal("TornWriteRate 1 left no torn tail; the test is vacuous")
	}
	_, rec := reopen(t, dir)
	if len(rec.Records) < 40 {
		t.Fatalf("recovered %d records, want >= 40 durable ones", len(rec.Records))
	}
	for i := 0; i < 40; i++ {
		if string(rec.Records[i].Data) != fmt.Sprintf("durable-%02d", i) {
			t.Fatalf("durable record %d = %q", i, rec.Records[i].Data)
		}
	}
	// Any extra records are a valid prefix of the async tail.
	for i, r := range rec.Records[40:] {
		if string(r.Data) != fmt.Sprintf("volatile-%02d", i) {
			t.Fatalf("async record %d = %q", i, r.Data)
		}
	}
	if rec.TornTail == 0 {
		t.Fatal("expected a torn tail after a crash with unsynced bytes")
	}
}

// TestPartialFsyncSurfacesError: an injected partial fsync fails the
// Append, and recovery still never yields a record out of order.
func TestPartialFsyncSurfacesError(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 3, SyncFailRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, _, err := Open(Options{
		Dir:      dir,
		OpenFile: func(path string) (File, error) { return fs.Open(path) },
	})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	acked := 0
	for i := 0; i < 50; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("r-%02d", i))); err != nil {
			failures++
		} else {
			acked++
		}
	}
	if failures == 0 {
		t.Fatal("SyncFailRate 0.5 injected nothing; the test is vacuous")
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	// Every record present must be a strict prefix-ordered subset.
	for i, r := range rec.Records {
		if string(r.Data) != fmt.Sprintf("r-%02d", i) {
			t.Fatalf("record %d = %q: recovery reordered or corrupted", i, r.Data)
		}
	}
	if len(rec.Records) < acked {
		t.Fatalf("recovered %d records but %d were acknowledged durable", len(rec.Records), acked)
	}
}

// TestSegmentRotation: records spanning many segments all recover.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := j.Append(1, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Rotations == 0 {
		t.Fatal("no rotations at 256-byte segments; the test is vacuous")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	if len(rec.Records) != 64 {
		t.Fatalf("recovered %d records across segments, want 64", len(rec.Records))
	}
	if rec.Segments < 2 {
		t.Fatalf("replayed %d segments, want >= 2", rec.Segments)
	}
}

// TestCompaction: after Compact, recovery sees the snapshot plus only
// post-snapshot records, and covered segment files are gone.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(2, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	if string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d post-snapshot records, want 3", len(rec.Records))
	}
	for i, r := range rec.Records {
		if string(r.Data) != fmt.Sprintf("new-%d", i) {
			t.Fatalf("post-snapshot record %d = %q", i, r.Data)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == segmentName(1) {
			t.Fatal("compaction left the covered segment behind")
		}
	}
}

// TestCorruptMidFileStopsReplay: flipping a byte in the middle of a
// segment truncates recovery at the corruption, never past it.
func TestCorruptMidFileStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	if len(rec.Records) >= 20 {
		t.Fatal("recovery read past a corrupt frame")
	}
	for i, r := range rec.Records {
		if string(r.Data) != fmt.Sprintf("rec-%02d", i) {
			t.Fatalf("record %d = %q after corruption", i, r.Data)
		}
	}
	if rec.TornTail == 0 {
		t.Fatal("corruption not reported as torn bytes")
	}
}

// slowSyncFile gives fsync a real duration (tmpfs syncs are instant),
// opening the window in which concurrent appenders pile up behind one
// group commit.
type slowSyncFile struct{ f *os.File }

func (s *slowSyncFile) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *slowSyncFile) Close() error                { return s.f.Close() }
func (s *slowSyncFile) Sync() error {
	time.Sleep(200 * time.Microsecond)
	return s.f.Sync()
}

// TestConcurrentAppendGroupCommit: concurrent appenders share fsyncs
// (group commit) and every acknowledged record recovers.
func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{
		Dir: dir,
		OpenFile: func(path string) (File, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &slowSyncFile{f: f}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := j.Append(1, []byte(fmt.Sprintf("w%d-%03d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := j.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("no group commit: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	if len(rec.Records) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*perWriter)
	}
}

// TestOversizeRecordRejected: a record recovery could never read back
// (readFrames treats len > maxFrameSize as corruption) is refused at
// the write path instead of being acknowledged and silently lost.
func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, make([]byte, maxFrameSize)); err == nil {
		t.Fatal("oversize Append acknowledged as durable")
	}
	if err := j.AppendAsync(1, make([]byte, maxFrameSize)); err == nil {
		t.Fatal("oversize AppendAsync accepted")
	}
	// The rejection leaves the journal fully usable.
	if err := j.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "ok" {
		t.Fatalf("recovered %+v, want exactly the in-bounds record", rec.Records)
	}
	if rec.TornTail != 0 {
		t.Fatalf("oversize rejection left %d torn bytes on disk", rec.TornTail)
	}
}

// TestLiveBytesAcrossRotations: the compaction trigger accumulates
// across segment rotations (so a threshold above one segment's size is
// reachable), resets on Compact, and is seeded from the on-disk backlog
// at Open.
func TestLiveBytesAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := j.Append(1, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Rotations == 0 {
		t.Fatal("no rotations at 256-byte segments; the test is vacuous")
	}
	if lb := j.LiveBytes(); lb <= 256 {
		t.Fatalf("LiveBytes = %d, capped at one segment — the compaction trigger can never fire", lb)
	}
	if err := j.Compact([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if lb := j.LiveBytes(); lb != 0 {
		t.Fatalf("LiveBytes = %d after Compact, want 0", lb)
	}
	for i := 0; i < 8; i++ {
		if err := j.Append(1, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	postCompact := j.LiveBytes()
	if postCompact <= 0 {
		t.Fatalf("LiveBytes = %d after post-compaction appends", postCompact)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, _ := reopen(t, dir)
	defer j2.Close()
	if lb := j2.LiveBytes(); lb < postCompact {
		t.Fatalf("reopen seeded LiveBytes = %d, want >= %d (the un-compacted backlog)", lb, postCompact)
	}
}

// TestCompactFuncCapturesUnderWriteLock: the ledger protocol in
// miniature — writers mark an ID in shared state *before* appending its
// record, a compactor snapshots that state via CompactFunc. Because the
// capture runs under the journal write lock, any record already in a
// to-be-deleted segment has its state mark visible to the capture; a
// capture taken outside the lock (the old Compact(bytes) pattern) can
// miss a record whose append beats the rotation, deleting its only
// durable copy. After recovery, every ID must appear in the snapshot or
// in a surviving segment.
func TestCompactFuncCapturesUnderWriteLock(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 50
	var stateMu sync.Mutex
	var state []string
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				stateMu.Lock()
				state = append(state, id)
				stateMu.Unlock()
				if err := j.Append(1, []byte(id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			err := j.CompactFunc(func() ([]byte, error) {
				stateMu.Lock()
				defer stateMu.Unlock()
				return []byte(strings.Join(state, "\n")), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := reopen(t, dir)
	present := make(map[string]bool)
	for _, id := range strings.Split(string(rec.Snapshot), "\n") {
		present[id] = true
	}
	for _, r := range rec.Records {
		present[string(r.Data)] = true
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if id := fmt.Sprintf("w%d-%03d", w, i); !present[id] {
				t.Fatalf("record %s lost: not in the snapshot and its segment was deleted", id)
			}
		}
	}
}

// TestDoubleClose: Close is idempotent, and appends after Close fail.
func TestDoubleClose(t *testing.T) {
	j, _, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if err := j.Append(1, []byte("y")); err == nil {
		t.Fatal("append after Close succeeded")
	}
}
