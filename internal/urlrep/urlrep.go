// Package urlrep implements a download-source reputation baseline in the
// spirit of CAMP (Rajab et al., NDSS 2013) and Amico (Vadrevu et al.,
// ESORICS 2013): a file is judged by the historical reputation of the
// domain serving it. The paper's Section IV-B predicts exactly where
// this fails — file-hosting services like softonic.com and mediafire.com
// serve both benign and malicious files, so their mixed reputation
// produces false positives or negatives. The Evaluate helper quantifies
// that failure mode on the synthetic corpus.
package urlrep

import (
	"fmt"

	"repro/internal/dataset"
)

// Model holds per-domain reputation learned from a training window.
type Model struct {
	// MaliciousRatio is (malicious files served) / (labeled files
	// served) per domain.
	MaliciousRatio map[string]float64
	// Support is the number of labeled files behind each ratio.
	Support map[string]int
	// MinSupport gates how many labeled files a domain needs before its
	// reputation is trusted.
	MinSupport int
}

// Train computes domain reputations over the training event indexes.
func Train(store *dataset.Store, trainIdx []int, minSupport int) (*Model, error) {
	if store == nil || !store.Frozen() {
		return nil, fmt.Errorf("urlrep: store must be frozen")
	}
	if minSupport < 1 {
		minSupport = 1
	}
	events := store.Events()
	type counts struct{ mal, total int }
	perDomain := make(map[string]*counts)
	seen := make(map[[2]string]struct{})
	for _, i := range trainIdx {
		if i < 0 || i >= len(events) {
			return nil, fmt.Errorf("urlrep: event index %d out of range", i)
		}
		e := &events[i]
		label := store.Label(e.File)
		if label != dataset.LabelMalicious && label != dataset.LabelBenign {
			continue
		}
		key := [2]string{e.Domain, string(e.File)}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		c, ok := perDomain[e.Domain]
		if !ok {
			c = &counts{}
			perDomain[e.Domain] = c
		}
		c.total++
		if label == dataset.LabelMalicious {
			c.mal++
		}
	}
	m := &Model{
		MaliciousRatio: make(map[string]float64, len(perDomain)),
		Support:        make(map[string]int, len(perDomain)),
		MinSupport:     minSupport,
	}
	for d, c := range perDomain {
		m.MaliciousRatio[d] = float64(c.mal) / float64(c.total)
		m.Support[d] = c.total
	}
	return m, nil
}

// Verdict is the model's judgment of a file by its serving domain.
type Verdict int

// Verdicts.
const (
	// NoEvidence: the domain has too little labeled history.
	NoEvidence Verdict = iota
	// JudgedBenign / JudgedMalicious by domain reputation threshold.
	JudgedBenign
	JudgedMalicious
)

// Judge scores one download domain at the given maliciousness threshold.
func (m *Model) Judge(domain string, threshold float64) Verdict {
	if m.Support[domain] < m.MinSupport {
		return NoEvidence
	}
	if m.MaliciousRatio[domain] >= threshold {
		return JudgedMalicious
	}
	return JudgedBenign
}

// Eval summarizes file-level performance of the domain-reputation
// baseline.
type Eval struct {
	// Judged counts test files with enough domain evidence.
	Judged int
	// TP, FP, FN, TN are file-level outcomes among judged files.
	TP, FP, FN, TN int
	// MixedDomainErrors counts errors on domains that served BOTH
	// labeled benign and malicious training files — the paper's
	// mixed-reputation failure mode.
	MixedDomainErrors int
}

// TPRate returns TP / (TP + FN).
func (e *Eval) TPRate() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// FPRate returns FP / (FP + TN).
func (e *Eval) FPRate() float64 {
	if e.FP+e.TN == 0 {
		return 0
	}
	return float64(e.FP) / float64(e.FP+e.TN)
}

// Evaluate judges the labeled test files by their download domains.
func Evaluate(store *dataset.Store, m *Model, testIdx []int, threshold float64) Eval {
	events := store.Events()
	var out Eval
	seen := make(map[dataset.FileHash]struct{})
	for _, i := range testIdx {
		if i < 0 || i >= len(events) {
			continue
		}
		e := &events[i]
		if _, dup := seen[e.File]; dup {
			continue
		}
		seen[e.File] = struct{}{}
		label := store.Label(e.File)
		if label != dataset.LabelMalicious && label != dataset.LabelBenign {
			continue
		}
		verdict := m.Judge(e.Domain, threshold)
		if verdict == NoEvidence {
			continue
		}
		out.Judged++
		mixed := m.MaliciousRatio[e.Domain] > 0 && m.MaliciousRatio[e.Domain] < 1 &&
			m.Support[e.Domain] >= m.MinSupport
		truthMal := label == dataset.LabelMalicious
		judgedMal := verdict == JudgedMalicious
		switch {
		case truthMal && judgedMal:
			out.TP++
		case truthMal && !judgedMal:
			out.FN++
			if mixed {
				out.MixedDomainErrors++
			}
		case !truthMal && judgedMal:
			out.FP++
			if mixed {
				out.MixedDomainErrors++
			}
		default:
			out.TN++
		}
	}
	return out
}
