package urlrep

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
)

// buildRepStore creates a store with one clean domain, one dirty domain
// and one mixed-reputation hosting domain.
func buildRepStore(t *testing.T) *dataset.Store {
	t.Helper()
	store := dataset.NewStore()
	at := time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	add := func(domain string, malicious bool) dataset.FileHash {
		t.Helper()
		n++
		f := dataset.FileHash(fmt.Sprintf("f%03d", n))
		err := store.AddEvent(dataset.DownloadEvent{
			File: f, Machine: dataset.MachineID(fmt.Sprintf("m%03d", n)),
			Process: "proc", URL: "http://" + domain + "/x", Domain: domain,
			Time: at, Executed: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Minute)
		label := dataset.LabelBenign
		if malicious {
			label = dataset.LabelMalicious
		}
		if err := store.SetTruth(f, dataset.GroundTruth{Label: label}); err != nil {
			t.Fatal(err)
		}
		return f
	}
	for i := 0; i < 10; i++ {
		add("clean.com", false)
		add("dirty.com", true)
		// Mixed domain: 50/50.
		add("mixed.com", i%2 == 0)
	}
	store.Freeze()
	return store
}

func allIdx(store *dataset.Store) []int {
	out := make([]int, store.NumEvents())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 1); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := Train(dataset.NewStore(), nil, 1); err == nil {
		t.Error("unfrozen store accepted")
	}
	store := buildRepStore(t)
	if _, err := Train(store, []int{-1}, 1); err == nil {
		t.Error("bad index accepted")
	}
}

func TestTrainRatios(t *testing.T) {
	store := buildRepStore(t)
	m, err := Train(store, allIdx(store), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MaliciousRatio["clean.com"]; got != 0 {
		t.Errorf("clean ratio = %v", got)
	}
	if got := m.MaliciousRatio["dirty.com"]; got != 1 {
		t.Errorf("dirty ratio = %v", got)
	}
	if got := m.MaliciousRatio["mixed.com"]; got != 0.5 {
		t.Errorf("mixed ratio = %v", got)
	}
	if m.Support["clean.com"] != 10 {
		t.Errorf("support = %d", m.Support["clean.com"])
	}
}

func TestJudge(t *testing.T) {
	store := buildRepStore(t)
	m, err := Train(store, allIdx(store), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Judge("dirty.com", 0.5); got != JudgedMalicious {
		t.Errorf("dirty = %v", got)
	}
	if got := m.Judge("clean.com", 0.5); got != JudgedBenign {
		t.Errorf("clean = %v", got)
	}
	if got := m.Judge("neverseen.com", 0.5); got != NoEvidence {
		t.Errorf("unseen = %v", got)
	}
	// Mixed domain flips with the threshold: the paper's failure mode.
	if got := m.Judge("mixed.com", 0.4); got != JudgedMalicious {
		t.Errorf("mixed at 0.4 = %v", got)
	}
	if got := m.Judge("mixed.com", 0.6); got != JudgedBenign {
		t.Errorf("mixed at 0.6 = %v", got)
	}
}

func TestEvaluateMixedDomainErrors(t *testing.T) {
	store := buildRepStore(t)
	m, err := Train(store, allIdx(store), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0.4: mixed.com judged malicious -> its 5 benign files
	// become FPs, all attributable to mixed reputation.
	ev := Evaluate(store, m, allIdx(store), 0.4)
	if ev.Judged != 30 {
		t.Errorf("judged = %d", ev.Judged)
	}
	if ev.FP != 5 {
		t.Errorf("FP = %d, want 5 (mixed.com benign files)", ev.FP)
	}
	if ev.MixedDomainErrors != 5 {
		t.Errorf("mixed-domain errors = %d, want 5", ev.MixedDomainErrors)
	}
	// Threshold 0.6: mixed.com judged benign -> its malware becomes FNs.
	ev = Evaluate(store, m, allIdx(store), 0.6)
	if ev.FN != 5 {
		t.Errorf("FN = %d, want 5", ev.FN)
	}
	if ev.TPRate() != float64(10)/15 {
		t.Errorf("TP rate = %v", ev.TPRate())
	}
	var empty Eval
	if empty.TPRate() != 0 || empty.FPRate() != 0 {
		t.Error("empty eval rates should be 0")
	}
}
