package agent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/retry"
)

// seqEvent builds a valid event whose file/machine derive from i.
func seqEvent(i int) dataset.DownloadEvent {
	return dataset.DownloadEvent{
		File:     dataset.FileHash(fmt.Sprintf("file-%03d", i%7)),
		Machine:  dataset.MachineID(fmt.Sprintf("m-%03d", i)),
		Process:  "proc",
		URL:      "http://x.com/f.exe",
		Domain:   "x.com",
		Time:     time.Date(2014, time.March, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Executed: true,
	}
}

func TestDeliverInOrder(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cs.Deliver(Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ts := cs.TransportStats()
	if ts.Delivered != 10 || ts.Duplicates != 0 || ts.OutOfOrder != 0 {
		t.Errorf("transport stats = %+v", ts)
	}
	if store.NumEvents() != 10 {
		t.Errorf("stored %d events, want 10", store.NumEvents())
	}
}

func TestDeliverDeduplicates(t *testing.T) {
	store := dataset.NewStore()
	cs, _ := NewCollectionServer(store, 20, nil)
	env := Envelope{Seq: 0, Event: seqEvent(0)}
	for i := 0; i < 3; i++ {
		if err := cs.Deliver(env); err != nil {
			t.Fatal(err)
		}
	}
	ts := cs.TransportStats()
	if ts.Delivered != 1 || ts.Duplicates != 2 {
		t.Errorf("transport stats = %+v, want 1 delivered 2 duplicates", ts)
	}
	if store.NumEvents() != 1 {
		t.Errorf("stored %d events, want 1 (idempotent redelivery)", store.NumEvents())
	}
}

func TestDeliverReordersWithinWindow(t *testing.T) {
	store := dataset.NewStore()
	cs, _ := NewCollectionServer(store, 20, nil)
	// Deliver 2, 0, 1 — and a duplicate of 2 while it is still pending.
	if err := cs.Deliver(Envelope{Seq: 2, Event: seqEvent(2)}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Deliver(Envelope{Seq: 2, Event: seqEvent(2)}); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 0 {
		t.Fatal("event committed before predecessors arrived")
	}
	if err := cs.Deliver(Envelope{Seq: 0, Event: seqEvent(0)}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Deliver(Envelope{Seq: 1, Event: seqEvent(1)}); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 3 {
		t.Fatalf("stored %d events, want 3", store.NumEvents())
	}
	// Committed order must be sequence order.
	events := store.Events()
	for i := 0; i < 3; i++ {
		if events[i].Machine != seqEvent(i).Machine {
			t.Errorf("event %d = %s, want sequence order", i, events[i].Machine)
		}
	}
	ts := cs.TransportStats()
	if ts.OutOfOrder != 1 || ts.Duplicates != 1 || ts.MaxPending < 1 {
		t.Errorf("transport stats = %+v", ts)
	}
}

func TestDeliverSigmaCapOrderIndependent(t *testing.T) {
	// The sigma cap keeps the first sigma distinct machines in sequence
	// order; reordered delivery must not change which ones survive.
	build := func(perm []int) []dataset.MachineID {
		store := dataset.NewStore()
		cs, _ := NewCollectionServer(store, 2, nil)
		for _, i := range perm {
			e := seqEvent(i)
			e.File = "shared"
			if err := cs.Deliver(Envelope{Seq: uint64(i), Event: e}); err != nil {
				t.Fatal(err)
			}
		}
		var out []dataset.MachineID
		for _, e := range store.Events() {
			out = append(out, e.Machine)
		}
		return out
	}
	inOrder := build([]int{0, 1, 2, 3})
	shuffled := build([]int{3, 1, 0, 2})
	if len(inOrder) != 2 || len(shuffled) != 2 {
		t.Fatalf("sigma cap kept %d/%d events, want 2", len(inOrder), len(shuffled))
	}
	for i := range inOrder {
		if inOrder[i] != shuffled[i] {
			t.Errorf("survivor %d differs: %s vs %s", i, inOrder[i], shuffled[i])
		}
	}
}

func TestDeliverReorderWindowExceeded(t *testing.T) {
	cs, _ := NewCollectionServer(dataset.NewStore(), 20, nil)
	if err := cs.SetReorderWindow(0); err == nil {
		t.Error("window 0 accepted")
	}
	if err := cs.SetReorderWindow(2); err != nil {
		t.Fatal(err)
	}
	// Three gapped arrivals overflow a window of 2.
	var err error
	for _, seq := range []uint64{10, 20, 30} {
		if err = cs.Deliver(Envelope{Seq: seq, Event: seqEvent(int(seq))}); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("reorder window overflow not detected")
	}
}

func TestCheckpointRestoreMidStream(t *testing.T) {
	// An uninterrupted run is the reference.
	refStore := dataset.NewStore()
	ref, _ := NewCollectionServer(refStore, 3, nil)
	const n = 60
	for i := 0; i < n; i++ {
		if err := ref.Deliver(Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// The crashing run: checkpoint at the midpoint (with an out-of-order
	// envelope pending), restore into a fresh server over the same
	// durable store, replay a few already-delivered envelopes
	// (at-least-once redelivery after recovery), and finish the stream.
	store := dataset.NewStore()
	cs, _ := NewCollectionServer(store, 3, nil)
	half := n / 2
	for i := 0; i < half; i++ {
		if err := cs.Deliver(Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Leave seq half+1 pending (its predecessor has not arrived).
	if err := cs.Deliver(Envelope{Seq: uint64(half + 1), Event: seqEvent(half + 1)}); err != nil {
		t.Fatal(err)
	}
	snap, err := cs.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCollectionServer(store, nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	// Redeliver a prefix the sender never got acks for.
	for i := half - 3; i < half; i++ {
		if err := restored.Deliver(Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := half; i < n; i++ {
		if err := restored.Deliver(Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
			t.Fatal(err)
		}
	}

	if store.NumEvents() != refStore.NumEvents() {
		t.Fatalf("recovered run stored %d events, reference %d", store.NumEvents(), refStore.NumEvents())
	}
	a, b := store.Events(), refStore.Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs after recovery: %+v vs %+v", i, a[i], b[i])
		}
	}
	if restored.Stats() != ref.Stats() {
		t.Errorf("pipeline stats diverged: %+v vs %+v", restored.Stats(), ref.Stats())
	}
	// 3 redelivered prefix envelopes, plus seq half+1 which was already
	// restored from the checkpoint's pending buffer when the tail loop
	// re-sent it.
	if got := restored.TransportStats().Duplicates; got != 4 {
		t.Errorf("recovery counted %d duplicates, want 4", got)
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	mk := func() []byte {
		cs, _ := NewCollectionServer(dataset.NewStore(), 3, nil)
		for i := 0; i < 20; i++ {
			if err := cs.Deliver(Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := cs.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	if string(mk()) != string(mk()) {
		t.Error("identical states produced different checkpoint bytes")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreCollectionServer(dataset.NewStore(), nil, []byte("not json")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}

func TestUplinkRetriesTransientFailures(t *testing.T) {
	var delivered []uint64
	failures := map[uint64]int{3: 2, 7: 1} // seq -> injected failures
	send := func(env Envelope) error {
		if failures[env.Seq] > 0 {
			failures[env.Seq]--
			return errors.New("transient")
		}
		delivered = append(delivered, env.Seq)
		return nil
	}
	noSleep := func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	up, err := NewUplink(send, retry.Policy{MaxAttempts: 4, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := up.Send(context.Background(), Envelope{Seq: uint64(i), Event: seqEvent(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(delivered) != 10 {
		t.Fatalf("delivered %d envelopes, want 10", len(delivered))
	}
	if up.Retransmissions() != 3 {
		t.Errorf("retransmissions = %d, want 3", up.Retransmissions())
	}
	if up.Sent() != 10 {
		t.Errorf("sent = %d, want 10", up.Sent())
	}
}

func TestUplinkPermanentFailureSurfaces(t *testing.T) {
	up, _ := NewUplink(func(Envelope) error {
		return retry.Permanent(errors.New("event rejected"))
	}, retry.Policy{Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() }})
	if err := up.Send(context.Background(), Envelope{Seq: 0, Event: seqEvent(0)}); err == nil {
		t.Error("permanent delivery failure swallowed")
	}
	if up.Retransmissions() != 0 {
		t.Error("permanent failure was retransmitted")
	}
}

// TestDeliverConcurrentUplinks hammers one collection server from many
// goroutines — the sharded-CS shape where several agent uplinks land on
// the same shard. Every envelope must be applied exactly once and the
// counters must balance; the race detector checks the locking.
func TestDeliverConcurrentUplinks(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	const uplinks, total = 8, 400
	var wg sync.WaitGroup
	for u := 0; u < uplinks; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			// Each uplink redelivers a striped share of the sequence space,
			// twice, so duplicates and out-of-order arrivals are guaranteed.
			for pass := 0; pass < 2; pass++ {
				for seq := u; seq < total; seq += uplinks {
					if err := cs.Deliver(Envelope{Seq: uint64(seq), Event: seqEvent(seq)}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(u)
	}
	wg.Wait()
	ts := cs.TransportStats()
	if ts.Delivered != total {
		t.Fatalf("Delivered = %d, want %d", ts.Delivered, total)
	}
	if ts.Duplicates != total {
		t.Fatalf("Duplicates = %d, want %d (every envelope sent twice)", ts.Duplicates, total)
	}
	if st := cs.Stats(); st.Raw != total {
		t.Fatalf("Raw = %d, want %d", st.Raw, total)
	}
}
