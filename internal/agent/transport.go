package agent

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/reputation"
	"repro/internal/retry"
)

// DefaultReorderWindow bounds how many events the collection server will
// buffer waiting for a missing predecessor before declaring the uplink
// broken. The real deployment's agents batch and retransmit over lossy
// networks; a bounded window keeps memory finite while tolerating any
// realistic reordering.
const DefaultReorderWindow = 4096

// Envelope is the unit of the agent->CS wire protocol: one download
// event plus the deterministic sequence number its source assigned. The
// sequence number is what makes redelivery detectable — the network may
// duplicate or reorder envelopes freely, and the CS still reconstructs
// the original exactly-once, in-order stream.
type Envelope struct {
	Seq   uint64                `json:"seq"`
	Event dataset.DownloadEvent `json:"event"`
}

// TransportStats counts what the at-least-once endpoint observed.
type TransportStats struct {
	// Delivered counts unique events committed to the pipeline.
	Delivered int
	// Duplicates counts redelivered envelopes that were discarded.
	Duplicates int
	// OutOfOrder counts envelopes that arrived before a predecessor.
	OutOfOrder int
	// MaxPending is the high-water mark of the resequencing buffer.
	MaxPending int
}

// SetReorderWindow overrides the resequencing buffer bound (for tests
// and tuned deployments). The window must be at least 1.
func (cs *CollectionServer) SetReorderWindow(w int) error {
	if w < 1 {
		return fmt.Errorf("agent: reorder window %d must be >= 1", w)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.reorderWindow = w
	return nil
}

// Deliver is the at-least-once ingestion endpoint. Envelopes may arrive
// duplicated and reordered; Deliver deduplicates by sequence number,
// buffers out-of-order arrivals within the reorder window, and applies
// events to the collection rules in exact sequence order, making the
// whole path idempotent. The sigma prevalence cap depends on arrival
// order, so restoring sequence order is what keeps the stored dataset
// identical to a fault-free run.
func (cs *CollectionServer) Deliver(env Envelope) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if env.Seq < cs.nextSeq {
		cs.tstats.Duplicates++
		return nil
	}
	if _, dup := cs.pendingSeq[env.Seq]; dup {
		cs.tstats.Duplicates++
		return nil
	}
	if env.Seq != cs.nextSeq {
		cs.tstats.OutOfOrder++
	}
	cs.pendingSeq[env.Seq] = env.Event
	if n := len(cs.pendingSeq); n > cs.tstats.MaxPending {
		cs.tstats.MaxPending = n
	}
	if len(cs.pendingSeq) > cs.reorderWindow {
		return fmt.Errorf("agent: reorder window exceeded: %d events pending, next seq %d",
			len(cs.pendingSeq), cs.nextSeq)
	}
	for {
		e, ok := cs.pendingSeq[cs.nextSeq]
		if !ok {
			return nil
		}
		delete(cs.pendingSeq, cs.nextSeq)
		cs.nextSeq++
		if err := cs.reportLocked(e); err != nil {
			return err
		}
		cs.tstats.Delivered++
	}
}

// TransportStats returns the delivery counters.
func (cs *CollectionServer) TransportStats() TransportStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.tstats
}

// checkpoint is the JSON-serialized durable state of a collection
// server: everything needed to resume ingestion after a crash, given
// the (durable) event store.
type checkpoint struct {
	Sigma     int              `json:"sigma"`
	NextSeq   uint64           `json:"next_seq"`
	Pending   []Envelope       `json:"pending,omitempty"`
	Seen      []checkpointSeen `json:"seen"`
	Stats     Stats            `json:"stats"`
	Transport TransportStats   `json:"transport"`
	Window    int              `json:"reorder_window"`
}

// checkpointSeen is one file's distinct-machine set.
type checkpointSeen struct {
	File     dataset.FileHash    `json:"file"`
	Machines []dataset.MachineID `json:"machines"`
}

// Checkpoint serializes the server's ingestion state — the per-file
// distinct-machine sets behind the sigma cap, the pipeline counters, and
// the transport sequencing state. Together with the durable event store
// it is sufficient to restore the server after a crash; keys are sorted
// so identical states serialize identically.
func (cs *CollectionServer) Checkpoint() ([]byte, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ck := checkpoint{
		Sigma:     cs.sigma,
		NextSeq:   cs.nextSeq,
		Stats:     cs.stats,
		Transport: cs.tstats,
		Window:    cs.reorderWindow,
	}
	for seq, e := range cs.pendingSeq {
		ck.Pending = append(ck.Pending, Envelope{Seq: seq, Event: e})
	}
	sort.Slice(ck.Pending, func(i, j int) bool { return ck.Pending[i].Seq < ck.Pending[j].Seq })
	ck.Seen = make([]checkpointSeen, 0, len(cs.seen))
	for f, machines := range cs.seen {
		entry := checkpointSeen{File: f, Machines: make([]dataset.MachineID, 0, len(machines))}
		for m := range machines {
			entry.Machines = append(entry.Machines, m)
		}
		sort.Slice(entry.Machines, func(i, j int) bool { return entry.Machines[i] < entry.Machines[j] })
		ck.Seen = append(ck.Seen, entry)
	}
	sort.Slice(ck.Seen, func(i, j int) bool { return ck.Seen[i].File < ck.Seen[j].File })
	return json.Marshal(ck)
}

// RestoreCollectionServer rebuilds a collection server from a Checkpoint
// snapshot, resuming ingestion against the given (durable) store exactly
// where the snapshot was taken. agentWL may be nil, matching
// NewCollectionServer.
func RestoreCollectionServer(store *dataset.Store, agentWL *reputation.DomainList, snapshot []byte) (*CollectionServer, error) {
	var ck checkpoint
	if err := json.Unmarshal(snapshot, &ck); err != nil {
		return nil, fmt.Errorf("agent: decode checkpoint: %w", err)
	}
	cs, err := NewCollectionServer(store, ck.Sigma, agentWL)
	if err != nil {
		return nil, err
	}
	cs.nextSeq = ck.NextSeq
	cs.stats = ck.Stats
	cs.tstats = ck.Transport
	if ck.Window > 0 {
		cs.reorderWindow = ck.Window
	}
	for _, env := range ck.Pending {
		cs.pendingSeq[env.Seq] = env.Event
	}
	for _, entry := range ck.Seen {
		set := make(map[dataset.MachineID]struct{}, len(entry.Machines))
		for _, m := range entry.Machines {
			set[m] = struct{}{}
		}
		cs.seen[entry.File] = set
	}
	return cs, nil
}

// Uplink is the sending half of the at-least-once transport: it pushes
// envelopes through a possibly faulty delivery function, retrying
// transient failures under the given policy. Paired with the CS-side
// deduplication it yields exactly-once application of every event.
type Uplink struct {
	send        func(Envelope) error
	policy      retry.Policy
	retransmits int64
	sent        int64
}

// NewUplink builds an uplink over send. The policy's OnRetry hook is
// preserved; the uplink's retransmission counter stacks on top of it.
func NewUplink(send func(Envelope) error, policy retry.Policy) (*Uplink, error) {
	if send == nil {
		return nil, fmt.Errorf("agent: nil send function")
	}
	return &Uplink{send: send, policy: policy}, nil
}

// Send transmits one envelope, retrying transient delivery failures
// until the policy gives up. Mark non-retryable delivery errors with
// retry.Permanent inside the send function.
func (u *Uplink) Send(ctx context.Context, env Envelope) error {
	p := u.policy
	base := p.OnRetry
	p.OnRetry = func(attempt int, err error) {
		u.retransmits++
		if base != nil {
			base(attempt, err)
		}
	}
	u.sent++
	return retry.Do(ctx, p, func(context.Context) error { return u.send(env) })
}

// Sent returns how many envelopes Send accepted.
func (u *Uplink) Sent() int64 { return u.sent }

// Retransmissions returns how many redundant transmissions the retry
// loop performed.
func (u *Uplink) Retransmissions() int64 { return u.retransmits }
