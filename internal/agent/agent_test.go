package agent

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

func rawEvent(file, machine string, executed bool, domain string) dataset.DownloadEvent {
	return dataset.DownloadEvent{
		File:     dataset.FileHash(file),
		Machine:  dataset.MachineID(machine),
		Process:  "proc",
		URL:      "http://" + domain + "/f.exe",
		Domain:   domain,
		Time:     time.Date(2014, time.March, 1, 0, 0, 0, 0, time.UTC),
		Executed: executed,
	}
}

func TestNewCollectionServerValidation(t *testing.T) {
	if _, err := NewCollectionServer(nil, 20, nil); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewCollectionServer(dataset.NewStore(), 0, nil); err == nil {
		t.Error("sigma 0 accepted")
	}
}

func TestReportExecutedOnly(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Report(rawEvent("f1", "m1", false, "x.com")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Report(rawEvent("f1", "m2", true, "x.com")); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 1 {
		t.Errorf("stored %d events, want 1", store.NumEvents())
	}
	s := cs.Stats()
	if s.Raw != 2 || s.DroppedNotExecuted != 1 || s.Reported != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReportAgentWhitelist(t *testing.T) {
	store := dataset.NewStore()
	wl, err := reputation.NewDomainList([]string{"microsoft.com"})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCollectionServer(store, 20, wl)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Report(rawEvent("f1", "m1", true, "microsoft.com")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Report(rawEvent("f1", "m2", true, "sketch.com")); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 1 {
		t.Errorf("stored %d events, want 1", store.NumEvents())
	}
	if got := cs.Stats().DroppedWhitelistedURL; got != 1 {
		t.Errorf("whitelist drops = %d, want 1", got)
	}
}

func TestReportPrevalenceCap(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 distinct machines download f1; only the first 3 are reported.
	for i := 0; i < 5; i++ {
		m := fmt.Sprintf("m%d", i)
		if err := cs.Report(rawEvent("f1", m, true, "x.com")); err != nil {
			t.Fatal(err)
		}
	}
	if store.NumEvents() != 3 {
		t.Errorf("stored %d events, want 3 (sigma cap)", store.NumEvents())
	}
	if got := cs.Stats().DroppedPrevalenceCap; got != 2 {
		t.Errorf("cap drops = %d, want 2", got)
	}
	store.Freeze()
	if got := store.Prevalence("f1"); got != 3 {
		t.Errorf("observed prevalence = %d, want 3", got)
	}
}

func TestReportRedownloadBelowCap(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same machine downloads the file twice while below the cap: both
	// events reported (distinct-machine count stays 1 < 3).
	if err := cs.Report(rawEvent("f1", "m1", true, "x.com")); err != nil {
		t.Fatal(err)
	}
	if err := cs.Report(rawEvent("f1", "m1", true, "x.com")); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 2 {
		t.Errorf("stored %d events, want 2", store.NumEvents())
	}
}

func TestReportRedownloadAtCapDropped(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"m1", "m2"} {
		if err := cs.Report(rawEvent("f1", m, true, "x.com")); err != nil {
			t.Fatal(err)
		}
	}
	// m1 downloads again: distinct count (2) is not below sigma (2).
	if err := cs.Report(rawEvent("f1", "m1", true, "x.com")); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 2 {
		t.Errorf("stored %d events, want 2", store.NumEvents())
	}
}

func TestReportInvalidEvent(t *testing.T) {
	cs, err := NewCollectionServer(dataset.NewStore(), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Report(dataset.DownloadEvent{}); err == nil {
		t.Error("invalid event accepted")
	}
}

func TestSoftwareAgent(t *testing.T) {
	store := dataset.NewStore()
	cs, err := NewCollectionServer(store, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSoftwareAgent("", cs); err == nil {
		t.Error("empty machine accepted")
	}
	if _, err := NewSoftwareAgent("m1", nil); err == nil {
		t.Error("nil CS accepted")
	}
	a, err := NewSoftwareAgent("m1", cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(rawEvent("f1", "m2", true, "x.com")); err == nil {
		t.Error("foreign machine event accepted")
	}
	if err := a.Observe(rawEvent("f1", "m1", true, "x.com")); err != nil {
		t.Fatal(err)
	}
	if store.NumEvents() != 1 {
		t.Errorf("stored %d events", store.NumEvents())
	}
}
