// Package agent models the telemetry collection pipeline of Section
// II-A: per-machine software agents (SA) observe every web-based
// software download, and a centralized collection server (CS) stores
// only the events of interest. Three rules bound what reaches the
// dataset:
//
//  1. only downloads that are subsequently executed are reported;
//  2. a download is reported only while the file's prevalence (distinct
//     reporting machines) is below a threshold sigma (20 in the paper's
//     deployment);
//  3. downloads from agent-whitelisted vendor domains (major software
//     updates) are not collected.
//
// These rules shape the observed dataset — the prevalence distribution
// of Figure 2 is capped at sigma — so the reproduction applies them to
// the raw synthetic trace exactly as the deployment did.
package agent

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

// Stats counts the fate of raw events through the pipeline.
type Stats struct {
	Raw                   int
	DroppedNotExecuted    int
	DroppedWhitelistedURL int
	DroppedPrevalenceCap  int
	Reported              int
}

// CollectionServer receives download reports from software agents and
// stores the surviving ones. All methods are safe for concurrent use:
// the deployment's CS serializes ingestion per shard, and mu is that
// shard lock — concurrent agent uplinks contend on it, and the
// prevalence cap still sees one total order of arrivals.
//
// Two ingestion paths exist. Report applies the collection rules to one
// event directly (exactly-once, in-order callers such as the trace
// generator). Deliver is the at-least-once network endpoint: it accepts
// sequence-numbered envelopes that may arrive duplicated or reordered,
// deduplicates them, restores sequence order within a bounded window,
// and feeds the surviving events to the collection rules — see
// transport.go.
type CollectionServer struct {
	sigma   int
	agentWL *reputation.DomainList
	store   *dataset.Store

	mu    sync.Mutex
	seen  map[dataset.FileHash]map[dataset.MachineID]struct{} // guarded by mu
	stats Stats                                               // guarded by mu

	// At-least-once transport state (transport.go): the next sequence
	// number ingestion expects, events that arrived ahead of it, and the
	// delivery counters.
	nextSeq       uint64                           // guarded by mu
	pendingSeq    map[uint64]dataset.DownloadEvent // guarded by mu
	reorderWindow int                              // guarded by mu
	tstats        TransportStats                   // guarded by mu
}

// NewCollectionServer builds a CS writing into store. agentWL may be nil
// (no URL suppression).
func NewCollectionServer(store *dataset.Store, sigma int, agentWL *reputation.DomainList) (*CollectionServer, error) {
	if store == nil {
		return nil, fmt.Errorf("agent: nil store")
	}
	if sigma < 1 {
		return nil, fmt.Errorf("agent: sigma %d must be >= 1", sigma)
	}
	return &CollectionServer{
		sigma:         sigma,
		agentWL:       agentWL,
		store:         store,
		seen:          make(map[dataset.FileHash]map[dataset.MachineID]struct{}),
		pendingSeq:    make(map[uint64]dataset.DownloadEvent),
		reorderWindow: DefaultReorderWindow,
	}, nil
}

// Report applies the collection rules to one raw event and stores it if
// it survives. Events must arrive in (approximately) chronological order
// for the prevalence cap to match the deployment's behaviour; the
// generator guarantees per-file ordering.
func (cs *CollectionServer) Report(e dataset.DownloadEvent) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.reportLocked(e)
}

// reportLocked applies the collection rules to one event. Callers hold
// cs.mu.
func (cs *CollectionServer) reportLocked(e dataset.DownloadEvent) error {
	if err := e.Validate(); err != nil {
		return err
	}
	cs.stats.Raw++
	if !e.Executed {
		cs.stats.DroppedNotExecuted++
		return nil
	}
	if cs.agentWL != nil && e.Domain != "" && cs.agentWL.Contains(e.Domain) {
		cs.stats.DroppedWhitelistedURL++
		return nil
	}
	machines, ok := cs.seen[e.File]
	if !ok {
		machines = make(map[dataset.MachineID]struct{}, 1)
		cs.seen[e.File] = machines
	}
	if len(machines) >= cs.sigma {
		// The distinct-machine count is not below sigma, so the event is
		// not reported — whether it comes from a new machine or is a
		// re-download by an already-counted one.
		cs.stats.DroppedPrevalenceCap++
		return nil
	}
	machines[e.Machine] = struct{}{}
	if err := cs.store.AddEvent(e); err != nil {
		return fmt.Errorf("agent: store event: %w", err)
	}
	cs.stats.Reported++
	return nil
}

// Stats returns the pipeline counters.
func (cs *CollectionServer) Stats() Stats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.stats
}

// SoftwareAgent is the per-machine monitoring agent. It observes all
// web-based download events on its machine and forwards them to the CS;
// the executed-only rule is enforced agent-side in the deployment, but
// the CS re-checks it, so the agent here is a thin reporting shim that
// carries the machine identity.
type SoftwareAgent struct {
	machine dataset.MachineID
	cs      *CollectionServer
}

// NewSoftwareAgent binds an agent to its machine and collection server.
func NewSoftwareAgent(machine dataset.MachineID, cs *CollectionServer) (*SoftwareAgent, error) {
	if machine == "" {
		return nil, fmt.Errorf("agent: empty machine id")
	}
	if cs == nil {
		return nil, fmt.Errorf("agent: nil collection server")
	}
	return &SoftwareAgent{machine: machine, cs: cs}, nil
}

// Observe reports one download event observed on this agent's machine.
// The event's Machine field must match the agent's machine.
func (a *SoftwareAgent) Observe(e dataset.DownloadEvent) error {
	if e.Machine != a.machine {
		return fmt.Errorf("agent: event machine %q does not match agent machine %q", e.Machine, a.machine)
	}
	return a.cs.Report(e)
}
