package avtype_test

import (
	"fmt"

	"repro/internal/avtype"
)

// The paper's two worked examples from Section II-C.
func ExampleExtractor_Extract() {
	ex := avtype.NewExtractor(nil)

	// Rule 1 (Voting): three Zbot labels indicate banker, one indicates
	// dropper; banker wins the vote.
	typ, res := ex.Extract(map[string]string{
		"Symantec":  "Trojan.Zbot",
		"McAfee":    "Downloader-FYH!6C7411D1C043",
		"Kaspersky": "Trojan-Spy.Win32.Zbot.ruxa",
		"Microsoft": "PWS:Win32/Zbot",
	})
	fmt.Println(typ, res)

	// Rule 2 (Specificity): dropper vs a generic Artemis label; dropper
	// is more specific.
	typ, res = ex.Extract(map[string]string{
		"Kaspersky": "Trojan-Downloader.Win32.Agent.heqj",
		"McAfee":    "Artemis!DEC3771868CB",
	})
	fmt.Println(typ, res)
	// Output:
	// banker voting
	// dropper specificity
}
