// Package avtype reimplements the paper's malicious behaviour-type
// extractor (Section II-C), which the authors released as the AVType
// tool. Given the AV labels assigned by five leading engines (Microsoft,
// Symantec, TrendMicro, Kaspersky, McAfee), it derives a behaviour type
// (dropper, banker, fakeav, ...) using a per-vendor label interpretation
// map and two conflict-resolution rules:
//
//  1. Voting — each label maps to a type; the type with the most votes
//     wins.
//  2. Specificity — on a vote tie, the most specific type wins (e.g.
//     banker beats trojan; AV engines use trojan/generic for files whose
//     true behaviour is unknown).
//
// Rare ties that survive both rules are resolved by a pluggable manual
// resolver, mirroring the paper's "manual analysis" fallback.
package avtype

import (
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Resolution records which rule produced the final type for a sample.
// The paper reports the shares: no conflict 44%, Voting 28%, Specificity
// 23%, manual analysis 5%.
type Resolution int

// Resolution values.
const (
	// ResolvedNone means no usable label existed.
	ResolvedNone Resolution = iota
	// ResolvedUnanimous means all labels agreed on the type.
	ResolvedUnanimous
	// ResolvedVoting means a strict plurality decided.
	ResolvedVoting
	// ResolvedSpecificity means a vote tie was broken by specificity.
	ResolvedSpecificity
	// ResolvedManual means the manual resolver decided.
	ResolvedManual
)

// String names the resolution rule.
func (r Resolution) String() string {
	switch r {
	case ResolvedNone:
		return "none"
	case ResolvedUnanimous:
		return "unanimous"
	case ResolvedVoting:
		return "voting"
	case ResolvedSpecificity:
		return "specificity"
	case ResolvedManual:
		return "manual"
	default:
		return "resolution(?)"
	}
}

// typeSpecificity ranks behaviour types from generic to specific.
// Undefined and trojan are the least specific ("AV engines often use
// trojan or generic to flag malicious files whose true behavior/class is
// unknown"); pup and adware share a rank, which is what makes the manual
// fallback reachable, as in the paper.
var typeSpecificity = map[dataset.MalwareType]int{
	dataset.TypeUndefined:  0,
	dataset.TypeTrojan:     1,
	dataset.TypePUP:        2,
	dataset.TypeAdware:     2,
	dataset.TypeDropper:    3,
	dataset.TypeWorm:       4,
	dataset.TypeBot:        5,
	dataset.TypeSpyware:    6,
	dataset.TypeFakeAV:     7,
	dataset.TypeRansomware: 8,
	dataset.TypeBanker:     9,
}

// keywordRule maps a label substring to a behaviour type. Rules are
// evaluated in order; the first match wins, so specific keywords must
// precede generic ones.
type keywordRule struct {
	keyword string
	typ     dataset.MalwareType
}

// familyRules map family tokens with a well-known behaviour to a type,
// e.g. Zbot steals banking credentials, so any Zbot label indicates a
// banker regardless of the surrounding grammar. This mirrors the paper's
// example where Trojan.Zbot / PWS:Win32/Zbot / Trojan-Spy...Zbot all vote
// banker.
var familyRules = []keywordRule{
	{"zbot", dataset.TypeBanker},
	{"banker", dataset.TypeBanker},
	{"banload", dataset.TypeBanker},
	{"cryptolocker", dataset.TypeRansomware},
	{"cryptowall", dataset.TypeRansomware},
	{"fakeav", dataset.TypeFakeAV},
	{"somoto", dataset.TypeDropper},
	{"firseria", dataset.TypePUP},
	{"installcore", dataset.TypePUP},
}

// genericKeywords identify labels that carry no behaviour information.
// They are checked after the specific behaviour keywords but before the
// catch-all trojan keywords: "Trojan-Downloader.Win32.Agent" must map to
// dropper (the paper's own example), while a bare "Trojan:Win32/Agent"
// is a generic detection.
var genericKeywords = []string{
	"artemis", "dangerousobject", "uds:", "heur", "suspicious",
	"gen:variant", "generic", ".gen", "_gen", "agent",
}

// specificKeywords map behaviour keywords to types, most specific first.
var specificKeywords = []keywordRule{
	{"ransom", dataset.TypeRansomware},
	{"fakealert", dataset.TypeFakeAV},
	{"fake-av", dataset.TypeFakeAV},
	{"fraudtool", dataset.TypeFakeAV},
	{"rogue", dataset.TypeFakeAV},
	{"pws", dataset.TypeBanker},
	{"infostealer", dataset.TypeBanker},
	{"backdoor", dataset.TypeBot},
	{"bkdr", dataset.TypeBot},
	{"bot", dataset.TypeBot},
	{"spyware", dataset.TypeSpyware},
	{"trojan-spy", dataset.TypeSpyware},
	{"tspy", dataset.TypeSpyware},
	{"spy", dataset.TypeSpyware},
	{"worm", dataset.TypeWorm},
	{"downloader", dataset.TypeDropper},
	{"dloadr", dataset.TypeDropper},
	{"dldr", dataset.TypeDropper},
	{"dropper", dataset.TypeDropper},
	{"adware", dataset.TypeAdware},
	{"adw", dataset.TypeAdware},
	{"pup", dataset.TypePUP},
	{"pua", dataset.TypePUP},
}

// trojanKeywords are the least-informative typed keywords, consulted
// last.
var trojanKeywords = []keywordRule{
	{"trojan", dataset.TypeTrojan},
	{"troj", dataset.TypeTrojan},
}

// MapLabel interprets one AV label into a behaviour type using the
// interpretation map. The boolean is false when the label yields no
// information at all (empty label).
func MapLabel(label string) (dataset.MalwareType, bool) {
	if label == "" {
		return dataset.TypeUndefined, false
	}
	l := strings.ToLower(label)
	for _, fr := range familyRules {
		if strings.Contains(l, fr.keyword) {
			return fr.typ, true
		}
	}
	for _, kr := range specificKeywords {
		if strings.Contains(l, kr.keyword) {
			return kr.typ, true
		}
	}
	for _, g := range genericKeywords {
		if strings.Contains(l, g) {
			return dataset.TypeUndefined, true
		}
	}
	for _, kr := range trojanKeywords {
		if strings.Contains(l, kr.keyword) {
			return kr.typ, true
		}
	}
	return dataset.TypeUndefined, true
}

// ManualResolver breaks ties that survive Voting and Specificity. It
// receives the tied candidates (sorted for determinism) and the raw
// labels.
type ManualResolver func(candidates []dataset.MalwareType, labels map[string]string) dataset.MalwareType

// DefaultManualResolver is a deterministic stand-in for the paper's
// manual analysis: it picks the lexicographically-first type name among
// the tied candidates.
func DefaultManualResolver(candidates []dataset.MalwareType, _ map[string]string) dataset.MalwareType {
	if len(candidates) == 0 {
		return dataset.TypeUndefined
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.String() < best.String() {
			best = c
		}
	}
	return best
}

// Extractor derives behaviour types from leading-engine label maps.
type Extractor struct {
	manual ManualResolver
}

// NewExtractor builds an Extractor; a nil manual resolver uses
// DefaultManualResolver.
func NewExtractor(manual ManualResolver) *Extractor {
	if manual == nil {
		manual = DefaultManualResolver
	}
	return &Extractor{manual: manual}
}

// Extract derives the behaviour type for a sample from its leading-engine
// labels (engine name → label).
func (e *Extractor) Extract(labels map[string]string) (dataset.MalwareType, Resolution) {
	votes := make(map[dataset.MalwareType]int)
	total := 0
	for _, label := range labels {
		typ, ok := MapLabel(label)
		if !ok {
			continue
		}
		votes[typ]++
		total++
	}
	if total == 0 {
		return dataset.TypeUndefined, ResolvedNone
	}
	// Unanimous?
	if len(votes) == 1 {
		for typ := range votes {
			return typ, ResolvedUnanimous
		}
	}
	// Voting: strict plurality.
	maxVotes := 0
	for _, n := range votes {
		if n > maxVotes {
			maxVotes = n
		}
	}
	var leaders []dataset.MalwareType
	for typ, n := range votes {
		if n == maxVotes {
			leaders = append(leaders, typ)
		}
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
	if len(leaders) == 1 {
		return leaders[0], ResolvedVoting
	}
	// Specificity: strictly most specific leader wins.
	bestSpec := -1
	specTies := 0
	var bestType dataset.MalwareType
	for _, typ := range leaders {
		s := typeSpecificity[typ]
		switch {
		case s > bestSpec:
			bestSpec, bestType, specTies = s, typ, 1
		case s == bestSpec:
			specTies++
		}
	}
	if specTies == 1 {
		return bestType, ResolvedSpecificity
	}
	// Manual analysis fallback on the still-tied, most-specific leaders.
	var tied []dataset.MalwareType
	for _, typ := range leaders {
		if typeSpecificity[typ] == bestSpec {
			tied = append(tied, typ)
		}
	}
	return e.manual(tied, labels), ResolvedManual
}

// Stats accumulates resolution-rule usage across samples.
type Stats struct {
	Total       int
	Unanimous   int
	Voting      int
	Specificity int
	Manual      int
	None        int
}

// Observe records one extraction outcome.
func (s *Stats) Observe(r Resolution) {
	s.Total++
	switch r {
	case ResolvedUnanimous:
		s.Unanimous++
	case ResolvedVoting:
		s.Voting++
	case ResolvedSpecificity:
		s.Specificity++
	case ResolvedManual:
		s.Manual++
	case ResolvedNone:
		s.None++
	}
}

// Share returns the fraction of decided samples resolved by r.
func (s *Stats) Share(r Resolution) float64 {
	decided := s.Total - s.None
	if decided == 0 {
		return 0
	}
	var n int
	switch r {
	case ResolvedUnanimous:
		n = s.Unanimous
	case ResolvedVoting:
		n = s.Voting
	case ResolvedSpecificity:
		n = s.Specificity
	case ResolvedManual:
		n = s.Manual
	}
	return float64(n) / float64(decided)
}
