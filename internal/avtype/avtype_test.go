package avtype

import (
	"testing"

	"repro/internal/dataset"
)

func TestMapLabel(t *testing.T) {
	tests := []struct {
		label string
		want  dataset.MalwareType
	}{
		{"Trojan.Zbot", dataset.TypeBanker},
		{"PWS:Win32/Zbot", dataset.TypeBanker},
		{"Trojan-Spy.Win32.Zbot.ruxa", dataset.TypeBanker},
		{"Downloader-FYH!6C7411D1C043", dataset.TypeDropper},
		{"Trojan-Downloader.Win32.Agent.heqj", dataset.TypeDropper},
		{"Artemis!DEC3771868CB", dataset.TypeUndefined},
		{"TROJ_FAKEAV.SMU1", dataset.TypeFakeAV},
		{"Ransom:Win32/Crowti", dataset.TypeRansomware},
		{"Trojan-Ransom.Win32.Foreign.a", dataset.TypeRansomware},
		{"Backdoor.Win32.Agent.x", dataset.TypeBot},
		{"Worm:Win32/Allaple", dataset.TypeWorm},
		{"not-a-virus:AdWare.Win32.Agent.x", dataset.TypeAdware},
		{"PUA.InstallMonster", dataset.TypePUP},
		{"Trojan:Win32/Malex", dataset.TypeTrojan},
		{"Trojan:Win32/Agent", dataset.TypeUndefined},
		{"UDS:DangerousObject.Multi.Generic", dataset.TypeUndefined},
		{"Trojan.Gen.2", dataset.TypeUndefined},
		{"TSPY_KEYLOG.A", dataset.TypeSpyware},
	}
	for _, tt := range tests {
		got, ok := MapLabel(tt.label)
		if !ok {
			t.Errorf("MapLabel(%q) not ok", tt.label)
			continue
		}
		if got != tt.want {
			t.Errorf("MapLabel(%q) = %v, want %v", tt.label, got, tt.want)
		}
	}
}

func TestMapLabelEmpty(t *testing.T) {
	if _, ok := MapLabel(""); ok {
		t.Error("empty label should not map")
	}
}

func TestExtractPaperVotingExample(t *testing.T) {
	// The paper's rule-1 example: 3 Zbot labels (banker) vs 1 Downloader
	// (dropper) → banker via voting.
	e := NewExtractor(nil)
	typ, res := e.Extract(map[string]string{
		"Symantec":  "Trojan.Zbot",
		"McAfee":    "Downloader-FYH!6C7411D1C043",
		"Kaspersky": "Trojan-Spy.Win32.Zbot.ruxa",
		"Microsoft": "PWS:Win32/Zbot",
	})
	if typ != dataset.TypeBanker {
		t.Errorf("type = %v, want banker", typ)
	}
	if res != ResolvedVoting {
		t.Errorf("resolution = %v, want voting", res)
	}
}

func TestExtractPaperSpecificityExample(t *testing.T) {
	// The paper's rule-2 example: Kaspersky dropper vs McAfee generic →
	// dropper via specificity.
	e := NewExtractor(nil)
	typ, res := e.Extract(map[string]string{
		"Kaspersky": "Trojan-Downloader.Win32.Agent.heqj",
		"McAfee":    "Artemis!DEC3771868CB",
	})
	if typ != dataset.TypeDropper {
		t.Errorf("type = %v, want dropper", typ)
	}
	if res != ResolvedSpecificity {
		t.Errorf("resolution = %v, want specificity", res)
	}
}

func TestExtractUnanimous(t *testing.T) {
	e := NewExtractor(nil)
	typ, res := e.Extract(map[string]string{
		"Symantec":  "Ransom.Cryptolocker",
		"Microsoft": "Ransom:Win32/Crilock.A",
	})
	if typ != dataset.TypeRansomware || res != ResolvedUnanimous {
		t.Errorf("got (%v, %v), want (ransomware, unanimous)", typ, res)
	}
}

func TestExtractNoLabels(t *testing.T) {
	e := NewExtractor(nil)
	typ, res := e.Extract(nil)
	if typ != dataset.TypeUndefined || res != ResolvedNone {
		t.Errorf("got (%v, %v), want (undefined, none)", typ, res)
	}
}

func TestExtractManualFallback(t *testing.T) {
	// pup and adware share a specificity rank, so a 1-1 tie reaches the
	// manual resolver.
	called := false
	e := NewExtractor(func(c []dataset.MalwareType, _ map[string]string) dataset.MalwareType {
		called = true
		if len(c) != 2 {
			t.Errorf("manual resolver got %d candidates, want 2", len(c))
		}
		return dataset.TypePUP
	})
	typ, res := e.Extract(map[string]string{
		"A": "PUA.SomethingElseX",
		"B": "Adware.OtherThing",
	})
	if !called {
		t.Fatal("manual resolver not invoked")
	}
	if typ != dataset.TypePUP || res != ResolvedManual {
		t.Errorf("got (%v, %v), want (pup, manual)", typ, res)
	}
}

func TestDefaultManualResolverDeterministic(t *testing.T) {
	got := DefaultManualResolver([]dataset.MalwareType{dataset.TypePUP, dataset.TypeAdware}, nil)
	// "adware" < "pup" lexicographically.
	if got != dataset.TypeAdware {
		t.Errorf("DefaultManualResolver = %v, want adware", got)
	}
	if DefaultManualResolver(nil, nil) != dataset.TypeUndefined {
		t.Error("empty candidates should yield undefined")
	}
}

func TestExtractSpecificityBeatsTrojanGeneric(t *testing.T) {
	e := NewExtractor(nil)
	// banker vs trojan 1-1 tie → banker (more specific), as in the
	// paper's narrative.
	typ, res := e.Extract(map[string]string{
		"A": "Infostealer.Bancos",
		"B": "Trojan:Win32/Agentab",
	})
	if typ != dataset.TypeBanker || res != ResolvedSpecificity {
		t.Errorf("got (%v, %v), want (banker, specificity)", typ, res)
	}
}

func TestExtractAllGenericIsUndefinedUnanimous(t *testing.T) {
	e := NewExtractor(nil)
	typ, res := e.Extract(map[string]string{
		"McAfee":    "Artemis!AA",
		"Kaspersky": "UDS:DangerousObject.Multi",
	})
	if typ != dataset.TypeUndefined || res != ResolvedUnanimous {
		t.Errorf("got (%v, %v), want (undefined, unanimous)", typ, res)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Observe(ResolvedUnanimous)
	s.Observe(ResolvedUnanimous)
	s.Observe(ResolvedVoting)
	s.Observe(ResolvedManual)
	s.Observe(ResolvedNone)
	if s.Total != 5 {
		t.Errorf("Total = %d", s.Total)
	}
	if got := s.Share(ResolvedUnanimous); got != 0.5 {
		t.Errorf("Share(unanimous) = %v, want 0.5 (of 4 decided)", got)
	}
	if got := s.Share(ResolvedVoting); got != 0.25 {
		t.Errorf("Share(voting) = %v, want 0.25", got)
	}
	var empty Stats
	if empty.Share(ResolvedManual) != 0 {
		t.Error("empty stats Share should be 0")
	}
}

func TestResolutionString(t *testing.T) {
	names := map[Resolution]string{
		ResolvedNone: "none", ResolvedUnanimous: "unanimous",
		ResolvedVoting: "voting", ResolvedSpecificity: "specificity",
		ResolvedManual: "manual",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}
