package lint

import (
	"strings"
	"testing"

	"repro/internal/lint/lintkit/lintkittest"
)

// Each analyzer has a flagging fixture (every bad shape carries a
// `// want` expectation) and a non-flagging one (scope exemptions and
// sanctioned patterns), per the analysistest convention.

func TestDeterminism(t *testing.T) {
	lintkittest.Run(t, "testdata/src/determinism/synth", Determinism)
}

func TestDeterminismOutOfScope(t *testing.T) {
	lintkittest.Run(t, "testdata/src/determinism/clean", Determinism)
}

// TestDeterminismLifecycle pins the widened default scope: the
// champion/challenger lifecycle (caller-injected clocks) is inside the
// deterministic core.
func TestDeterminismLifecycle(t *testing.T) {
	lintkittest.Run(t, "testdata/src/determinism/lifecycle", Determinism)
}

func TestLockguard(t *testing.T) {
	lintkittest.Run(t, "testdata/src/lockguard/serve", Lockguard)
}

// TestLockguardCatchesCompactionBug pins the acceptance criterion
// directly: the PR 3 bug shape — guarded state captured before the
// write lock — must be flagged, and the fixed shape must not.
func TestLockguardCatchesCompactionBug(t *testing.T) {
	diags := lintkittest.Findings(t, "testdata/src/lockguard/serve", Lockguard)
	lintkittest.MustFind(t, diags, "lockguard", `pending is guarded by mu but compactRacy accesses it`)
	for _, d := range diags {
		if strings.Contains(d.Message, "compactSafe") {
			t.Errorf("compactSafe (capture under the lock) must be clean, got: %s", d)
		}
	}
}

func TestJournalOrder(t *testing.T) {
	lintkittest.Run(t, "testdata/src/journalorder/serve", JournalOrder)
}

func TestRetryPolicy(t *testing.T) {
	lintkittest.Run(t, "testdata/src/retrypolicy/app", RetryPolicy)
}

func TestRetryPolicyExemptPackage(t *testing.T) {
	lintkittest.Run(t, "testdata/src/retrypolicy/retry", RetryPolicy)
}

// TestRetryPolicyLifecycle pins that the lifecycle's re-scan scheduler
// is NOT exempt: its pacing must go through internal/retry, and a bare
// sleep-poll loop is flagged.
func TestRetryPolicyLifecycle(t *testing.T) {
	lintkittest.Run(t, "testdata/src/retrypolicy/lifecycle", RetryPolicy)
}

func TestErrWrap(t *testing.T) {
	lintkittest.Run(t, "testdata/src/errwrap/app", ErrWrap)
}

func TestAtomicSwap(t *testing.T) {
	lintkittest.Run(t, "testdata/src/atomicswap/app", AtomicSwap)
}

// TestAllowDirectives runs the whole suite over the directive fixture:
// suppression must be analyzer-scoped and reason-mandatory.
func TestAllowDirectives(t *testing.T) {
	lintkittest.Run(t, "testdata/src/allow/app", Suite()...)
}

// TestSuiteSelfClean runs every analyzer over the lint packages
// themselves — the suite must hold itself to its own invariants.
func TestSuiteSelfClean(t *testing.T) {
	for _, dir := range []string{".", "lintkit", "lintkit/lintkittest"} {
		diags := lintkittest.Findings(t, dir, Suite()...)
		for _, d := range diags {
			t.Errorf("suite is not self-clean: %s", d)
		}
	}
}
