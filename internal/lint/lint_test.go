package lint

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/lintkit/lintkittest"
)

// Each analyzer has a flagging fixture (every bad shape carries a
// `// want` expectation) and a non-flagging one (scope exemptions and
// sanctioned patterns), per the analysistest convention.

func TestDeterminism(t *testing.T) {
	lintkittest.Run(t, "testdata/src/determinism/synth", Determinism)
}

func TestDeterminismOutOfScope(t *testing.T) {
	lintkittest.Run(t, "testdata/src/determinism/clean", Determinism)
}

// TestDeterminismLifecycle pins the widened default scope: the
// champion/challenger lifecycle (caller-injected clocks) is inside the
// deterministic core.
func TestDeterminismLifecycle(t *testing.T) {
	lintkittest.Run(t, "testdata/src/determinism/lifecycle", Determinism)
}

func TestLockguard(t *testing.T) {
	lintkittest.Run(t, "testdata/src/lockguard/serve", Lockguard)
}

// TestLockguardCatchesCompactionBug pins the acceptance criterion
// directly: the PR 3 bug shape — guarded state captured before the
// write lock — must be flagged, and the fixed shape must not.
func TestLockguardCatchesCompactionBug(t *testing.T) {
	diags := lintkittest.Findings(t, "testdata/src/lockguard/serve", Lockguard)
	lintkittest.MustFind(t, diags, "lockguard", `pending is guarded by mu but compactRacy accesses it`)
	for _, d := range diags {
		if strings.Contains(d.Message, "compactSafe") {
			t.Errorf("compactSafe (capture under the lock) must be clean, got: %s", d)
		}
	}
}

func TestLockguardClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/lockguard/clean", Lockguard)
}

// TestLockorder pins the acceptance bug class: a real cross-package
// lock-order cycle, where one direction comes from a call made under a
// lock and the other from a closure run under the callee's lock — both
// resolved through serialized facts.
func TestLockorder(t *testing.T) {
	lintkittest.Run(t, "testdata/src/lockorder/a", Lockorder)
}

func TestLockorderClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/lockorder/clean", Lockorder)
}

// TestGoroutinelife pins the leaked-goroutine class: unexitable loops
// in literals and named spawns, and signal-free fire-and-forget.
func TestGoroutinelife(t *testing.T) {
	lintkittest.Run(t, "testdata/src/goroutinelife/app", Goroutinelife)
}

func TestGoroutinelifeClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/goroutinelife/clean", Goroutinelife)
}

// TestCtxflow pins the dropped-context class: rooting on a request
// path, and calling a (facts-resolved) callee that severs the deadline.
func TestCtxflow(t *testing.T) {
	lintkittest.Run(t, "testdata/src/ctxflow/serve", Ctxflow)
}

func TestCtxflowClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/ctxflow/cluster", Ctxflow)
}

// withMetricDocs points metricdrift at the fixture's own documentation
// file for the duration of one test.
func withMetricDocs(t *testing.T, path string) {
	t.Helper()
	f := Metricdrift.Lookup("metricdrift.docs")
	abs, err := filepath.Abs(path)
	if err != nil {
		t.Fatal(err)
	}
	old := f.Value
	f.Value = abs
	t.Cleanup(func() { f.Value = old })
}

// TestMetricdrift pins the misspelled-metric class: case drift,
// segmentation drift against the documented spelling, and undocumented
// names.
func TestMetricdrift(t *testing.T) {
	withMetricDocs(t, "testdata/src/metricdrift/docs/METRICS.md")
	lintkittest.Run(t, "testdata/src/metricdrift/app", Metricdrift)
}

func TestMetricdriftClean(t *testing.T) {
	withMetricDocs(t, "testdata/src/metricdrift/docs/METRICS.md")
	lintkittest.Run(t, "testdata/src/metricdrift/clean", Metricdrift)
}

func TestJournalOrder(t *testing.T) {
	lintkittest.Run(t, "testdata/src/journalorder/serve", JournalOrder)
}

func TestJournalOrderClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/journalorder/clean/serve", JournalOrder)
}

func TestRetryPolicy(t *testing.T) {
	lintkittest.Run(t, "testdata/src/retrypolicy/app", RetryPolicy)
}

func TestRetryPolicyExemptPackage(t *testing.T) {
	lintkittest.Run(t, "testdata/src/retrypolicy/retry", RetryPolicy)
}

// TestRetryPolicyLifecycle pins that the lifecycle's re-scan scheduler
// is NOT exempt: its pacing must go through internal/retry, and a bare
// sleep-poll loop is flagged.
func TestRetryPolicyLifecycle(t *testing.T) {
	lintkittest.Run(t, "testdata/src/retrypolicy/lifecycle", RetryPolicy)
}

func TestErrWrap(t *testing.T) {
	lintkittest.Run(t, "testdata/src/errwrap/app", ErrWrap)
}

func TestErrWrapClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/errwrap/clean", ErrWrap)
}

func TestAtomicSwap(t *testing.T) {
	lintkittest.Run(t, "testdata/src/atomicswap/app", AtomicSwap)
}

func TestAtomicSwapClean(t *testing.T) {
	lintkittest.Run(t, "testdata/src/atomicswap/clean", AtomicSwap)
}

// TestAllowDirectives runs the whole suite over the directive fixture:
// suppression must be analyzer-scoped and reason-mandatory.
func TestAllowDirectives(t *testing.T) {
	lintkittest.Run(t, "testdata/src/allow/app", Suite()...)
}

// TestSuiteSelfClean runs every analyzer over the lint packages
// themselves — the suite must hold itself to its own invariants.
func TestSuiteSelfClean(t *testing.T) {
	for _, dir := range []string{".", "lintkit", "lintkit/lintkittest"} {
		diags := lintkittest.Findings(t, dir, Suite()...)
		for _, d := range diags {
			t.Errorf("suite is not self-clean: %s", d)
		}
	}
}
