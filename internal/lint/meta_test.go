package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteMeta is the analyzer registry's own contract: every
// registered analyzer has a unique identifier-shaped name, real
// documentation, and a fixture pair under testdata/src/<name>/ — at
// least one package with `// want` expectations (proof it catches its
// bug class) and at least one without (proof it stays quiet on
// conforming code).
func TestSuiteMeta(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Suite() {
		if a.Name == "" || !isIdentifier(a.Name) {
			t.Errorf("analyzer name %q is not a valid identifier", a.Name)
			continue
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if len(strings.TrimSpace(a.Doc)) < 20 {
			t.Errorf("analyzer %s has no meaningful doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
		for _, f := range a.Flags {
			if !strings.HasPrefix(f.Name, a.Name+".") {
				t.Errorf("analyzer %s flag %q is not namespaced as %s.<option>", a.Name, f.Name, a.Name)
			}
		}
		checkFixtures(t, a.Name)
	}
}

// checkFixtures verifies the positive/negative fixture pair exists.
func checkFixtures(t *testing.T, name string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	var positive, negative bool
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if strings.Contains(string(data), "// want `") {
			positive = true
		} else {
			negative = true
		}
		return nil
	})
	if err != nil {
		t.Errorf("analyzer %s has no fixture directory %s: %v", name, root, err)
		return
	}
	if !positive {
		t.Errorf("analyzer %s has no positive fixture (a file under %s with `// want` expectations)", name, root)
	}
	if !negative {
		t.Errorf("analyzer %s has no negative fixture (a want-free file under %s)", name, root)
	}
}

func isIdentifier(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}
