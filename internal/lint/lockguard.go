package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/lintkit"
)

// Lockguard checks `// guarded by <mu>` field annotations: every access
// to an annotated field from a method of the owning struct must happen
// with the named mutex held. "Held" is established conservatively and
// lexically, the way the repo's code is actually written:
//
//   - the method calls <recv>.<mu>.Lock() or <recv>.<mu>.RLock() at a
//     position before the access (defer <recv>.<mu>.Unlock() keeps it
//     held for the rest of the body), or
//   - the method's name ends in "Locked" — the repo's convention for
//     "caller holds the lock" helpers (e.g. storeResultLocked,
//     rotateLocked), or
//   - the access is explicitly annotated //lint:allow lockguard <why>.
//
// This is precisely the analysis that would have caught the PR 3
// compaction bug, where a snapshot of guarded ledger state was captured
// before the journal's write lock was taken: the guarded reads preceded
// the Lock() call, which is exactly the pattern flagged here.
//
// The check is flow-insensitive by design — it cannot prove an Unlock
// happened before the access — so it is a reviewable convention
// enforcer, not a race detector; `go test -race` remains the dynamic
// backstop.
var Lockguard = &lintkit.Analyzer{
	Name: "lockguard",
	Doc:  "accesses to fields annotated `// guarded by <mu>` must hold the named lock",
	Run:  runLockguard,
}

var guardedByRE = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_][A-Za-z0-9_]*)\b`)

// guardedField records one annotation: the field object and the name
// of the sibling mutex that guards it.
type guardedField struct {
	mu string
}

func runLockguard(pass *lintkit.Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethodLocks(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields scans struct declarations for annotated fields,
// validating that the named guard is a sibling field with a Lock
// method (sync.Mutex, sync.RWMutex or compatible).
func collectGuardedFields(pass *lintkit.Pass) map[types.Object]guardedField {
	guarded := make(map[types.Object]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := annotationOf(fld)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(fld.Pos(), "field is annotated `guarded by %s` but the struct has no field %s", mu, mu)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = guardedField{mu: mu}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// annotationOf extracts the guard name from a field's doc or trailing
// comment.
func annotationOf(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkMethodLocks verifies every guarded-field access through the
// method's receiver.
func checkMethodLocks(pass *lintkit.Pass, fd *ast.FuncDecl, guarded map[types.Object]guardedField) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // convention: caller holds the lock
	}
	recvObj := receiverObject(pass, fd)
	if recvObj == nil {
		return
	}
	// First pass: where does this method acquire each mutex?
	lockPos := make(map[string][]token.Pos) // mutex field name -> Lock()/RLock() call positions
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(inner.X).(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recvObj {
			return true
		}
		lockPos[inner.Sel.Name] = append(lockPos[inner.Sel.Name], call.Pos())
		return true
	})
	// Second pass: every receiver-rooted access to a guarded field must
	// be preceded by a Lock of its mutex.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recvObj {
			return true
		}
		fieldObj := pass.Info.Uses[sel.Sel]
		g, ok := guarded[fieldObj]
		if !ok {
			return true
		}
		if !lockedBefore(lockPos[g.mu], sel.Pos()) {
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but %s accesses it without %s.%s.Lock() held before this point (suffix the method name with Locked if the caller holds it)",
				base.Name, sel.Sel.Name, g.mu, fd.Name.Name, base.Name, g.mu)
		}
		return true
	})
}

// receiverObject resolves the method's receiver variable.
func receiverObject(pass *lintkit.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.Info.Defs[fd.Recv.List[0].Names[0]]
}

// lockedBefore reports whether any lock acquisition precedes pos.
func lockedBefore(locks []token.Pos, pos token.Pos) bool {
	for _, l := range locks {
		if l < pos {
			return true
		}
	}
	return false
}
