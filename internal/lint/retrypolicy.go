package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/lintkit"
)

// RetryPolicy keeps transient-failure handling in one place. PR 1
// introduced internal/retry (bounded backoff with jitter, circuit
// breaker, retry budgets) precisely so the pipeline would not grow
// ad-hoc `for { ...; time.Sleep(d) }` loops — which retry forever,
// synchronize into thundering herds, and ignore context cancellation —
// and so HTTP transports stay decoratable by internal/faults. The
// analyzer therefore flags, outside the exempt packages (default
// "retry,serve", the two layers that implement the policy):
//
//   - time.Sleep inside any for/range loop — use retry.Do with a
//     Policy, which backs off, jitters and honors ctx;
//   - composite-literal construction of net/http.Client — use
//     serve.Client (whose Transport is the faults decoration point)
//     or accept an *http.Client from the caller.
var RetryPolicy = &lintkit.Analyzer{
	Name: "retrypolicy",
	Doc:  "forbid hand-rolled sleep-retry loops and raw http.Client construction outside internal/retry and internal/serve",
	Flags: []*lintkit.Flag{
		{Name: "retrypolicy.exempt", Usage: "comma-separated package base names allowed to sleep in loops and build http.Clients", Value: "retry,serve"},
	},
	Run: runRetryPolicy,
}

func runRetryPolicy(pass *lintkit.Pass) error {
	if pkgInScope(pass.Path, pass.Analyzer.Lookup("retrypolicy.exempt").Value) {
		return nil
	}
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSleepInLoop(pass, n, stack)
			case *ast.CompositeLit:
				checkRawHTTPClient(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSleepInLoop(pass *lintkit.Pass, call *ast.CallExpr, stack []ast.Node) {
	id := calleeIdent(call)
	if id == nil {
		return
	}
	obj := pass.Info.Uses[id]
	if qualifiedName(obj) != "time.Sleep" {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			pass.Reportf(call.Pos(), "time.Sleep inside a loop is a hand-rolled retry/poll loop; use retry.Do with a Policy (backoff, jitter, ctx cancellation)")
			return
		case *ast.FuncLit:
			// A sleep inside a closure is attributed to the closure, not
			// the loop that happens to contain the closure's definition.
			return
		}
	}
}

func checkRawHTTPClient(pass *lintkit.Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Client" {
		pass.Reportf(lit.Pos(), "raw http.Client construction outside internal/retry and internal/serve bypasses the faults/retry decoration point; use serve.Client or accept an *http.Client")
	}
}
