package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/lintkit"
)

// Ctxflow enforces context propagation on request paths. In the scoped
// packages (default: serve, cluster, lifecycle — the layers that
// forward requests, hand off ownership, and pace rescans), any
// function that receives a context.Context or *http.Request is on a
// request path, and on a request path:
//
//   - calling context.Background() or context.TODO() severs the
//     caller's deadline and cancellation — derive from the incoming
//     context instead. The one sanctioned shape is the nil-guard
//     fallback `if ctx == nil { ctx = context.Background() }`;
//   - calling an in-module function that roots a fresh context itself
//     and accepts no context parameter drops the deadline one hop
//     down. This leg is interprocedural: the callee's behavior comes
//     from the cross-package facts, so the finding lands on the call
//     site in the package under analysis.
//
// Functions without a context or request parameter (startup wiring,
// free-running daemons) may root contexts freely.
var Ctxflow = &lintkit.Analyzer{
	Name: "ctxflow",
	Doc:  "request paths must propagate the caller's context; no context.Background/TODO or deadline-dropping callees",
	Flags: []*lintkit.Flag{
		{Name: "ctxflow.pkgs", Usage: "comma-separated package base names whose context flow is enforced", Value: "serve,cluster,lifecycle"},
	},
	Run: runCtxflow,
}

func runCtxflow(pass *lintkit.Pass) error {
	if !pkgInScope(pass.Path, pass.Analyzer.Lookup("ctxflow.pkgs").Value) {
		return nil
	}
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd.Type) {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
	return nil
}

// hasCtxParam reports whether the signature carries a context.Context
// or *http.Request parameter.
func hasCtxParam(pass *lintkit.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if typeIsContext(t) || typeIsRequestPtr(t) {
			return true
		}
	}
	return false
}

// typeIsRequestPtr reports whether t is *net/http.Request.
func typeIsRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func checkCtxFlow(pass *lintkit.Pass, fd *ast.FuncDecl) {
	guards := ctxNilGuardSpans(pass, fd.Body)
	inGuard := func(pos token.Pos) bool {
		for _, r := range guards {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = pass.Info.Uses[f].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = pass.Info.Uses[f.Sel].(*types.Func)
		}
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "context" && (callee.Name() == "Background" || callee.Name() == "TODO") {
			if !inGuard(call.Pos()) {
				pass.Reportf(call.Pos(),
					"context.%s() in %s severs the caller's deadline and cancellation on a request path; derive from the incoming context",
					callee.Name(), fd.Name.Name)
			}
			return true
		}
		if pass.Facts == nil {
			return true
		}
		key := lintkit.CanonFuncName(callee)
		if key == "" {
			return true
		}
		if ff := pass.Facts.Func(key); ff != nil && ff.RootsCtx && !ff.CtxParam {
			pass.Reportf(call.Pos(),
				"call drops the request context: %s roots a fresh context (%s:%d) and accepts none — thread the context through",
				shortFunc(key), lintkit.PathBase(ff.RootsFile), ff.RootsLine)
		}
		return true
	})
}

// ctxNilGuardSpans collects the body ranges of `if ctx == nil { ... }`
// blocks — the sanctioned place to root a fallback context.
func ctxNilGuardSpans(pass *lintkit.Pass, body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		for _, pair := range [][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
			if isNilIdent(pair[1]) && typeIsContext(pass.TypeOf(pair[0])) {
				spans = append(spans, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
			}
		}
		return true
	})
	return spans
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
