package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The per-package summarizer behind facts.go: one lexical walk over
// every function body producing the FuncFacts (lock events, call graph,
// termination signals, context rooting) and the package's metric
// literals. The lock model is deliberately lexical, mirroring how the
// repo's code is written: Lock()/RLock() adds the mutex to the held
// set, a non-deferred Unlock() removes it, and `defer mu.Unlock()`
// keeps it held to the end of the body. That asymmetry matters: a
// function that locks, unlocks, and then calls into another lock's
// scope must NOT produce an ordering edge, or correct lock/unlock/call
// sequences would read as deadlocks. One flow refinement tempers the
// lexical rule: a `return` reverts deferred-release locks acquired
// inside the innermost block containing it, so the common early-return
// guard (`if err != nil { mu.Lock(); defer mu.Unlock(); ...; return }`)
// does not leave the lock "held" over the rest of the body. Locks
// acquired in an outer block stay held — the fall-through path past a
// nested `if { return }` genuinely still holds them.

// CanonPath strips the `go vet` test-variant suffix from an import path
// ("repro/internal/serve [repro/internal/serve.test]" → the plain
// path), the canonical key facts are stored under.
func CanonPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// CanonFuncName returns the canonical facts key for a function object:
// "pkg/path.Func", or "pkg/path.Type.Method" for methods (pointer and
// value receivers collapse). Interface methods and unattributable
// functions return "" — dispatch through an interface is dropped, not
// widened, so every edge in the facts graph is a real static call.
func CanonFuncName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		named, ok := derefType(sig.Recv().Type()).(*types.Named)
		if !ok || types.IsInterface(named) || named.Obj().Pkg() == nil {
			return ""
		}
		return CanonPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + fn.Name()
	}
	return CanonPath(fn.Pkg().Path()) + "." + fn.Name()
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// metricNameRE matches longtail metric names embedded anywhere in a
// string literal (exposition format strings include labels and verbs).
var metricNameRE = regexp.MustCompile(`longtail_[A-Za-z0-9_]*`)

// SummarizePackage computes the facts for one typed package. Test
// files are excluded: facts describe production code only, so the
// test-variant package cmd/go hands the vettool summarizes identically
// to the plain one.
func SummarizePackage(path string, fset *token.FileSet, files []*ast.File, info *types.Info) *PackageFacts {
	s := &summarizer{
		pf:   &PackageFacts{Path: CanonPath(path), Funcs: make(map[string]*FuncFact)},
		fset: fset,
		info: info,
	}
	metrics := make(map[string]MetricUse)
	for _, f := range files {
		if IsTestFile(fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := s.declName(fd)
			for base, n := name, 2; ; n++ {
				if _, dup := s.pf.Funcs[name]; !dup {
					break
				}
				name = base + "#" + strconv.Itoa(n)
			}
			s.summarizeFunc(name, fd.Type, fd.Body)
		}
		collectMetrics(fset, f, metrics)
	}
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.pf.Metrics = append(s.pf.Metrics, metrics[n])
	}
	return s.pf
}

// SummarizeFuncLit summarizes one function literal in isolation — the
// on-the-fly path analyzers use for `go func() {...}()` bodies, where
// the literal is at hand and only its callees need facts lookup.
func SummarizeFuncLit(pkgPath string, fset *token.FileSet, info *types.Info, lit *ast.FuncLit) *FuncFact {
	s := &summarizer{
		pf:   &PackageFacts{Path: CanonPath(pkgPath), Funcs: make(map[string]*FuncFact)},
		fset: fset,
		info: info,
	}
	return s.summarizeFunc(CanonPath(pkgPath)+".<golit>", lit.Type, lit.Body)
}

// collectMetrics records every longtail_* name in the file's string
// literals. The bare prefix "longtail_" (a HasPrefix filter, not a
// metric) is ignored.
func collectMetrics(fset *token.FileSet, f *ast.File, out map[string]MetricUse) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		text, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, name := range metricNameRE.FindAllString(text, -1) {
			if name == "longtail_" {
				continue
			}
			if _, seen := out[name]; seen {
				continue
			}
			pos := fset.Position(lit.Pos())
			out[name] = MetricUse{Name: name, File: pos.Filename, Line: pos.Line}
		}
		return true
	})
}

type summarizer struct {
	pf   *PackageFacts
	fset *token.FileSet
	info *types.Info
}

// declName derives the canonical key for a declared function.
func (s *summarizer) declName(fd *ast.FuncDecl) string {
	if fn, ok := s.info.Defs[fd.Name].(*types.Func); ok {
		if n := CanonFuncName(fn); n != "" {
			return n
		}
	}
	return s.pf.Path + "." + fd.Name.Name
}

// heldLock is one held-set entry: the type-level identity plus the
// syntactic receiver path ("l.mu") that distinguishes instances for
// double-lock detection, and whether it is a shared (RLock) hold.
// lockPos and deferRelease drive the early-return refinement: a
// `return` drops entries scheduled for deferred release that were
// acquired inside the return's innermost enclosing block.
type heldLock struct {
	id           string
	path         string
	rlock        bool
	lockPos      token.Pos
	deferRelease bool
}

// funcState walks one function body.
type funcState struct {
	s      *summarizer
	ff     *FuncFact
	params []*types.Var
	held   []heldLock

	calls    map[string]bool
	acquires map[string]bool

	lits     map[*ast.FuncLit]string
	nlits    int
	name     string
	spawned  map[*ast.CallExpr]bool
	deferred map[*ast.CallExpr]bool
	// nilGuards are the body ranges of `if ctx == nil { ... }` blocks,
	// inside which rooting a fresh context is the sanctioned fallback.
	nilGuards [][2]token.Pos
	// returnBlock maps each return statement to the start of its
	// innermost enclosing block, for the deferred-release refinement.
	returnBlock map[*ast.ReturnStmt]token.Pos
}

func (s *summarizer) summarizeFunc(name string, ft *ast.FuncType, body *ast.BlockStmt) *FuncFact {
	ff := &FuncFact{}
	fs := &funcState{
		s:        s,
		ff:       ff,
		calls:    make(map[string]bool),
		acquires: make(map[string]bool),
		lits:     make(map[*ast.FuncLit]string),
		name:     name,
		spawned:  make(map[*ast.CallExpr]bool),
		deferred: make(map[*ast.CallExpr]bool),

		returnBlock: make(map[*ast.ReturnStmt]token.Pos),
	}
	if ft != nil && ft.Params != nil {
		for _, field := range ft.Params.List {
			t := s.info.TypeOf(field.Type)
			if isContextType(t) || isHTTPRequestPtr(t) {
				ff.CtxParam = true
			}
			n := len(field.Names)
			if n == 0 {
				n = 1 // unnamed parameter still occupies a slot
			}
			for i := 0; i < n; i++ {
				var v *types.Var
				if i < len(field.Names) {
					v, _ = s.info.Defs[field.Names[i]].(*types.Var)
				}
				fs.params = append(fs.params, v)
			}
		}
	}
	fs.collectNilGuards(body)
	fs.mapReturnBlocks(body, body.Pos())
	ast.Inspect(body, fs.visit)
	fs.finish()
	s.pf.Funcs[name] = ff
	return ff
}

// collectNilGuards records `if ctx == nil {}` body spans.
func (fs *funcState) collectNilGuards(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if cond, ok := ifs.Cond.(*ast.BinaryExpr); ok && cond.Op == token.EQL {
			for _, pair := range [][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
				if isNilExpr(pair[1]) && isContextType(fs.s.info.TypeOf(pair[0])) {
					fs.nilGuards = append(fs.nilGuards, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
				}
			}
		}
		return true
	})
}

// mapReturnBlocks records, for every return statement, the position of
// its innermost enclosing block (including switch/select clause bodies,
// which are statement lists without braces of their own). Function
// literals are skipped: their returns exit the literal, not this body.
func (fs *funcState) mapReturnBlocks(n ast.Node, cur token.Pos) {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		fs.returnBlock[n] = cur
		return
	case *ast.BlockStmt:
		for _, s := range n.List {
			fs.mapReturnBlocks(s, n.Pos())
		}
		return
	case *ast.CaseClause:
		for _, s := range n.Body {
			fs.mapReturnBlocks(s, n.Pos())
		}
		return
	case *ast.CommClause:
		for _, s := range n.Body {
			fs.mapReturnBlocks(s, n.Pos())
		}
		return
	case *ast.FuncLit:
		return
	case nil:
		return
	}
	walkChildren(n, func(c ast.Node) { fs.mapReturnBlocks(c, cur) })
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (fs *funcState) inNilGuard(pos token.Pos) bool {
	for _, r := range fs.nilGuards {
		if pos >= r[0] && pos <= r[1] {
			return true
		}
	}
	return false
}

func (fs *funcState) litName(lit *ast.FuncLit) string {
	if n, ok := fs.lits[lit]; ok {
		return n
	}
	fs.nlits++
	n := fs.name + "$" + strconv.Itoa(fs.nlits)
	fs.lits[lit] = n
	return n
}

func (fs *funcState) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// Summarize separately: a literal's lock events belong to its
		// own fact, linked back through ClosureArgs/Calls.
		name := fs.litName(n)
		fs.s.summarizeFunc(name, n.Type, n.Body)
		return false
	case *ast.GoStmt:
		fs.spawned[n.Call] = true
		return true
	case *ast.ReturnStmt:
		// The path ends here: locks acquired inside this return's block
		// and scheduled for deferred release are not held on any path
		// that reaches the code after the block.
		if blockPos, ok := fs.returnBlock[n]; ok {
			kept := fs.held[:0]
			for _, h := range fs.held {
				if !(h.deferRelease && h.lockPos >= blockPos) {
					kept = append(kept, h)
				}
			}
			fs.held = kept
		}
		return true
	case *ast.DeferStmt:
		fs.deferred[n.Call] = true
		return true
	case *ast.SendStmt:
		fs.ff.Signals = true
		return true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			fs.ff.Signals = true
		}
		return true
	case *ast.SelectStmt:
		fs.ff.Signals = true
		return true
	case *ast.RangeStmt:
		if t := fs.s.info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				fs.ff.Signals = true
			}
		}
		return true
	case *ast.ForStmt:
		if n.Cond == nil && !fs.ff.LoopNoExit {
			if !loopHasExit(n.Body) && !hasSignal(fs.s.info, n.Body) {
				pos := fs.s.fset.Position(n.Pos())
				fs.ff.LoopNoExit = true
				fs.ff.LoopFile = pos.Filename
				fs.ff.LoopLine = pos.Line
			}
		}
		return true
	case *ast.CallExpr:
		fs.handleCall(n)
		return true
	}
	return true
}

// mutexMethods are the sync lock-state transitions the held-set model
// tracks.
var mutexMethods = map[string]bool{"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true}

func (fs *funcState) handleCall(call *ast.CallExpr) {
	info := fs.s.info
	deferred := fs.deferred[call]
	spawned := fs.spawned[call]
	fun := ast.Unparen(call.Fun)

	// Builtin close(ch) completes a channel handshake.
	if id, ok := fun.(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			fs.ff.Signals = true
			return
		}
	}

	sel, isSel := fun.(*ast.SelectorExpr)
	var callee *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		callee, _ = info.Uses[f].(*types.Func)
		if callee == nil {
			// A func-typed variable: if it is one of our parameters and
			// locks are held, record the invoke-under-lock fact.
			if v, ok := info.Uses[f].(*types.Var); ok && !deferred && !spawned && len(fs.held) > 0 {
				for i, p := range fs.params {
					if p != nil && p == v {
						fs.ff.InvokesParamUnder = append(fs.ff.InvokesParamUnder, ParamInvoke{Param: i, Held: fs.heldIDs()})
						break
					}
				}
			}
		}
	case *ast.SelectorExpr:
		callee, _ = info.Uses[f.Sel].(*types.Func)
	}

	// sync mutex state transitions.
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "sync" && isSel && mutexMethods[sel.Sel.Name] {
		fs.mutexOp(sel, call, deferred)
		return
	}

	// Context rooting and context use.
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
		(callee.Name() == "Background" || callee.Name() == "TODO") {
		if !fs.ff.RootsCtx && !fs.inNilGuard(call.Pos()) {
			pos := fs.s.fset.Position(call.Pos())
			fs.ff.RootsCtx = true
			fs.ff.RootsFile = pos.Filename
			fs.ff.RootsLine = pos.Line
		}
	}
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "sync" && callee.Name() == "Done" {
		fs.ff.Signals = true // WaitGroup.Done: completion handshake
	}
	if isSel && isContextType(info.TypeOf(sel.X)) {
		fs.ff.Signals = true // ctx.Done()/Err()/Deadline()/Value()
	}
	for _, arg := range call.Args {
		if isContextType(info.TypeOf(arg)) {
			fs.ff.Signals = true // context handed downstream
		}
	}

	name := CanonFuncName(callee)
	if name != "" {
		if !spawned {
			fs.calls[name] = true
			if len(fs.held) > 0 && !deferred {
				pos := fs.s.fset.Position(call.Pos())
				fs.ff.CallsUnder = append(fs.ff.CallsUnder, CallUnder{
					Callee: name, Held: fs.heldIDs(), File: pos.Filename, Line: pos.Line,
				})
			}
		}
		for i, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok && !spawned {
				pos := fs.s.fset.Position(arg.Pos())
				fs.ff.ClosureArgs = append(fs.ff.ClosureArgs, ClosureArg{
					Callee: name, Param: i, Lit: fs.litName(lit), File: pos.Filename, Line: pos.Line,
				})
			}
		}
	}
}

// mutexOp applies one Lock/Unlock to the held set.
func (fs *funcState) mutexOp(sel *ast.SelectorExpr, call *ast.CallExpr, deferred bool) {
	id, path := fs.s.lockIdent(sel)
	if id == "" || strings.HasPrefix(id, "sync.") {
		return // local or unattributable mutex: no global identity
	}
	op := sel.Sel.Name
	pos := fs.s.fset.Position(call.Pos())
	switch op {
	case "Lock", "RLock":
		if deferred {
			return // defer mu.Lock() is nonsense; don't model it
		}
		rlock := op == "RLock"
		for _, h := range fs.held {
			switch {
			case h.id == id && h.path == path:
				if !(h.rlock && rlock) {
					fs.ff.DoubleLocks = append(fs.ff.DoubleLocks, LockEdge{From: id, To: id, File: pos.Filename, Line: pos.Line})
				}
			case h.id != id:
				fs.ff.Edges = append(fs.ff.Edges, LockEdge{From: h.id, To: id, File: pos.Filename, Line: pos.Line})
			}
		}
		fs.held = append(fs.held, heldLock{id: id, path: path, rlock: rlock, lockPos: call.Pos()})
		fs.acquires[id] = true
	case "Unlock", "RUnlock":
		if deferred {
			// Deferred release: held to the end of the body, except that
			// a return in the acquiring block ends the hold (see visit).
			for i := len(fs.held) - 1; i >= 0; i-- {
				if fs.held[i].path == path || fs.held[i].id == id {
					fs.held[i].deferRelease = true
					return
				}
			}
			return
		}
		for i := len(fs.held) - 1; i >= 0; i-- {
			if fs.held[i].path == path {
				fs.held = append(fs.held[:i], fs.held[i+1:]...)
				return
			}
		}
		for i := len(fs.held) - 1; i >= 0; i-- {
			if fs.held[i].id == id {
				fs.held = append(fs.held[:i], fs.held[i+1:]...)
				return
			}
		}
	}
}

func (fs *funcState) heldIDs() []string {
	ids := make([]string, 0, len(fs.held))
	seen := make(map[string]bool)
	for _, h := range fs.held {
		if !seen[h.id] {
			seen[h.id] = true
			ids = append(ids, h.id)
		}
	}
	return ids
}

func (fs *funcState) finish() {
	for id := range fs.acquires {
		fs.ff.Acquires = append(fs.ff.Acquires, id)
	}
	sort.Strings(fs.ff.Acquires)
	for c := range fs.calls {
		fs.ff.Calls = append(fs.ff.Calls, c)
	}
	sort.Strings(fs.ff.Calls)
}

// lockIdent derives the global identity of the mutex behind a
// Lock/Unlock selector: "pkg/path.Type.field" for mutex fields
// (including embedded mutexes, via the selection's field path),
// "pkg/path.var" for package-level mutexes, "" for locals.
func (s *summarizer) lockIdent(sel *ast.SelectorExpr) (id, path string) {
	recv := ast.Unparen(sel.X)
	t := derefType(s.info.TypeOf(recv))
	if named, ok := t.(*types.Named); ok && !isSyncMutex(named) {
		// Receiver embeds the mutex: s.Lock() on a struct. Walk the
		// selection's implicit field path to name the embedded field.
		selinfo := s.info.Selections[sel]
		if selinfo == nil || types.IsInterface(named) || named.Obj().Pkg() == nil {
			return "", ""
		}
		idx := selinfo.Index()
		if len(idx) < 2 {
			return "", ""
		}
		cur := named.Underlying()
		var chain []string
		for _, fi := range idx[:len(idx)-1] {
			st, ok := cur.(*types.Struct)
			if !ok || fi >= st.NumFields() {
				return "", ""
			}
			fld := st.Field(fi)
			chain = append(chain, fld.Name())
			cur = derefType(fld.Type()).Underlying()
		}
		base := CanonPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
		return base + "." + strings.Join(chain, "."), types.ExprString(recv) + "." + strings.Join(chain, ".")
	}
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if baseID, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := s.info.Uses[baseID].(*types.PkgName); isPkg {
				if obj := s.info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
					return CanonPath(obj.Pkg().Path()) + "." + e.Sel.Name, types.ExprString(recv)
				}
				return "", ""
			}
		}
		owner := derefType(s.info.TypeOf(e.X))
		if named, ok := owner.(*types.Named); ok && named.Obj().Pkg() != nil {
			return CanonPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + e.Sel.Name,
				types.ExprString(recv)
		}
	case *ast.Ident:
		if v, ok := s.info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return CanonPath(v.Pkg().Path()) + "." + e.Name, e.Name
		}
	}
	return "", ""
}

func isSyncMutex(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request — carrying a
// request is carrying its context.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// loopHasExit reports whether a `for {}` body contains a reachable way
// out: a return, a break binding to this loop, a goto, or a
// non-returning call (panic, os.Exit, log.Fatal*, testing Fatal*).
func loopHasExit(body *ast.BlockStmt) bool {
	exit := false
	var scan func(n ast.Node, nested bool)
	scan = func(n ast.Node, nested bool) {
		if n == nil || exit {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				exit = true
			case token.BREAK:
				// Unlabeled break binds to the nearest enclosing
				// breakable; labeled break is assumed to target this
				// loop or further out.
				if !nested || n.Label != nil {
					exit = true
				}
			}
		case *ast.CallExpr:
			if isNoReturnCall(n) {
				exit = true
			}
			for _, a := range n.Args {
				scan(a, nested)
			}
		case *ast.FuncLit:
			// A nested function's returns don't exit this loop.
		case *ast.ForStmt, *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { scan(c, true) })
		case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			walkChildren(n, func(c ast.Node) { scan(c, true) })
		default:
			walkChildren(n, func(c ast.Node) { scan(c, nested) })
		}
	}
	scan(body, false)
	return exit
}

// walkChildren applies fn to each direct child of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// isNoReturnCall recognizes calls that never return control.
func isNoReturnCall(call *ast.CallExpr) bool {
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	return name == "panic" || name == "Exit" || name == "Goexit" || strings.HasPrefix(name, "Fatal")
}

// hasSignal reports whether any termination/pacing signal appears under
// n: a channel operation, select, range over a channel, close, a
// WaitGroup.Done, or any context use.
func hasSignal(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(c.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
				if isContextType(info.TypeOf(sel.X)) {
					found = true
				}
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
					found = true
				}
			}
			for _, a := range c.Args {
				if isContextType(info.TypeOf(a)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
