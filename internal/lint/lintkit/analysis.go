// Package lintkit is a self-contained, stdlib-only re-implementation of
// the golang.org/x/tools/go/analysis runtime surface this repo's
// project-specific analyzers need: an Analyzer/Pass/Diagnostic model, a
// package loader built on `go list -export` plus the compiler's export
// data, an in-source suppression directive (//lint:allow), and a driver
// speaking both the standalone command-line protocol and the
// `go vet -vettool` unitchecker protocol.
//
// The repo's invariants — byte-determinism from a seed, mutex-guarded
// field access, journal-before-response ordering — are enforced by the
// analyzers in the parent package (internal/lint); lintkit is only the
// machinery that loads typed syntax and reports findings in standard
// `file:line:col: message` vet format. It exists as its own package so
// the analyzers read like x/tools analyzers and could be ported to the
// real framework by swapping one import if the dependency ever lands in
// the module.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static analysis pass: a name findings are
// attributed to (and suppressed by, via //lint:allow <name>), doc text,
// optional string-valued flags relayed through `go vet`, and the Run
// function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer; it must be a valid identifier as it
	// doubles as a flag-name prefix and a //lint:allow selector.
	Name string
	// Doc is the one-paragraph invariant statement shown by -help.
	Doc string
	// Flags declares the analyzer's configuration knobs. Each is
	// registered as -<name> in standalone mode and advertised to cmd/go
	// in vettool mode, so `go vet -vettool=... -<name>=v` works too.
	Flags []*Flag
	// Run inspects one package and reports findings via pass.Reportf.
	// A returned error aborts the whole run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// Flag is one string-valued analyzer option.
type Flag struct {
	// Name is the full flag name, conventionally "<analyzer>.<option>".
	Name  string
	Usage string
	// Value holds the default until the driver overwrites it from the
	// command line; analyzers read it inside Run.
	Value string
}

// Lookup returns the analyzer's flag with the given name, or nil.
func (a *Analyzer) Lookup(name string) *Flag {
	for _, f := range a.Flags {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Pass carries one typed package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path as the build system reports it
	// (for test variants under `go vet` this is the displayed ID, e.g.
	// "repro/internal/serve [repro/internal/serve.test]").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Facts holds the interprocedural summaries for this package and
	// its (in-module, transitive) dependencies — see facts.go. Never
	// nil under the standard drivers; test harnesses constructing a
	// Pass by hand may leave it nil, and the FactSet accessors are
	// nil-tolerant.
	Facts *FactSet

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportPosition records a finding at an explicit file:line — the form
// interprocedural analyzers use when the evidence comes from facts
// (whose positions are serialized file/line pairs, not token.Pos values
// in this process's FileSet).
func (p *Pass) ReportPosition(file string, line int, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      token.Position{Filename: file, Line: line},
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// OwnFacts returns this package's own summary from the fact set, or
// nil when facts are unavailable.
func (p *Pass) OwnFacts() *PackageFacts {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.Pkgs[CanonPath(p.Path)]
}

// TypeOf is a nil-tolerant shorthand for Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Diagnostic is one reported finding, already resolved to a concrete
// file position. Suppressed findings (covered by a //lint:allow
// directive) are retained with the directive's reason so machine
// consumers (-json, the DESIGN.md audit table) can enumerate every
// escape hatch in the tree.
type Diagnostic struct {
	Pos            token.Position
	Analyzer       string
	Message        string
	Suppressed     bool   `json:",omitempty"`
	SuppressReason string `json:",omitempty"`
}

// String renders the standard vet form the rest of the toolchain (and
// editors) parse: `file:line:col: message [analyzer]`.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// SortDiagnostics orders findings by file, line, column, analyzer —
// the stable order every driver prints in.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// PathBase returns the last slash-separated segment of an import path,
// with any `go vet` test-variant suffix (" [pkg.test]") stripped — the
// key the analyzers' package scoping matches on, so that
// "repro/internal/serve [repro/internal/serve.test]" still scopes as
// "serve".
func PathBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// IsTestFile reports whether the file's name marks it as a _test.go
// file. Analyzers whose invariants only bind production code use it to
// skip test sources when `go vet` hands them the test variant.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
