package lintkit

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Cross-package facts. Each package's summarizer (callgraph.go) distills
// its typed syntax into a PackageFacts value: a lightweight call graph
// (static calls and method sets; interface dispatch is dropped rather
// than widened, so every recorded edge is real), the mutex events each
// function performs, goroutine-termination signals, context rooting,
// and the `longtail_*` metric literals the package emits. Facts travel
// exactly like gc export data: in vettool mode they are serialized to
// the VetxOutput file cmd/go assigns each package and re-imported
// through PackageVetx; in standalone mode the loader computes them for
// every in-module package before analysis begins. Either way an
// analyzer sees the same FactSet and can answer interprocedural
// questions ("what locks does this callee take, transitively?") without
// whole-program loading.

// LockEdge is one ordered pair in the global mutex-acquisition graph:
// the lock To was (or would be) acquired while From was held, at
// File:Line. Lock identities are type-level — "pkg/path.Type.field" for
// a mutex field, "pkg/path.var" for a package-level mutex — so the
// graph spans instances, which is what a lock *hierarchy* is about.
type LockEdge struct {
	From string
	To   string
	File string `json:",omitempty"`
	Line int    `json:",omitempty"`
}

// CallUnder records a static call made while locks were held: every
// lock the callee acquires transitively becomes an edge from each held
// lock.
type CallUnder struct {
	Callee string
	Held   []string
	File   string `json:",omitempty"`
	Line   int    `json:",omitempty"`
}

// ParamInvoke records that a function invokes its Param'th (flattened)
// func-typed parameter while holding Held — the journal-style "run this
// closure under my lock" shape. A caller passing a function literal in
// that position inherits edges from Held into the literal's locks.
type ParamInvoke struct {
	Param int
	Held  []string
}

// ClosureArg records a function literal passed as the Param'th argument
// of a static call; Lit names the literal's own summary in the same
// package's Funcs map.
type ClosureArg struct {
	Callee string
	Param  int
	Lit    string
	File   string `json:",omitempty"`
	Line   int    `json:",omitempty"`
}

// FuncFact is one function's interprocedural summary. Function keys are
// canonical: "pkg/path.Func" for package functions, "pkg/path.Type.Method"
// for methods (pointer and value receivers collapse), and
// "<parent>$<n>" for the n'th function literal inside parent.
type FuncFact struct {
	// Acquires lists lock IDs this function itself Lock()s or RLock()s.
	Acquires []string `json:",omitempty"`
	// Edges are held→acquired pairs observed lexically inside the body.
	Edges []LockEdge `json:",omitempty"`
	// DoubleLocks are re-acquisitions of a lock already held on the same
	// syntactic path — self-deadlocks for a plain sync.Mutex.
	DoubleLocks []LockEdge `json:",omitempty"`
	// CallsUnder are static calls made while locks were held.
	CallsUnder []CallUnder `json:",omitempty"`
	// Calls lists every statically resolved callee (deduplicated).
	Calls []string `json:",omitempty"`
	// InvokesParamUnder marks func-typed parameters invoked under locks.
	InvokesParamUnder []ParamInvoke `json:",omitempty"`
	// ClosureArgs are function literals handed to static callees.
	ClosureArgs []ClosureArg `json:",omitempty"`
	// Signals reports a termination/completion signal in the body: a
	// channel operation or select, a WaitGroup.Done, or any use of a
	// context (Done/Err or passing one to a call).
	Signals bool `json:",omitempty"`
	// LoopNoExit reports a `for {}` loop with no reachable exit (return,
	// break, panic/fatal) and no signal inside — a goroutine running it
	// can never terminate. LoopFile/LoopLine locate the loop.
	LoopNoExit bool   `json:",omitempty"`
	LoopFile   string `json:",omitempty"`
	LoopLine   int    `json:",omitempty"`
	// RootsCtx reports a context.Background()/TODO() call outside an
	// `if ctx == nil` guard; CtxParam reports a context.Context or
	// *http.Request parameter. A RootsCtx function without a CtxParam
	// severs any caller's deadline.
	RootsCtx  bool   `json:",omitempty"`
	RootsFile string `json:",omitempty"`
	RootsLine int    `json:",omitempty"`
	CtxParam  bool   `json:",omitempty"`
}

// MetricUse is one `longtail_*` metric name occurrence in non-test code.
type MetricUse struct {
	Name string
	File string
	Line int
}

// PackageFacts is everything one package exports to downstream
// analysis.
type PackageFacts struct {
	Path    string
	Funcs   map[string]*FuncFact `json:",omitempty"`
	Metrics []MetricUse          `json:",omitempty"`
}

// FactSet is the union of facts visible to one analysis pass: the
// current package plus its (transitive, in-module) dependencies.
type FactSet struct {
	Pkgs map[string]*PackageFacts
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{Pkgs: make(map[string]*PackageFacts)}
}

// Add merges pf into the set (later adds win, so a package's own
// summary overrides a stale re-export from a dependency).
func (fs *FactSet) Add(pf *PackageFacts) {
	if pf == nil || pf.Path == "" {
		return
	}
	fs.Pkgs[pf.Path] = pf
}

// Func resolves a canonical function key ("pkg/path.Name", possibly
// with $n literal suffixes) to its fact, or nil.
func (fs *FactSet) Func(key string) *FuncFact {
	if fs == nil {
		return nil
	}
	pkg := key
	if i := strings.IndexByte(pkg, '$'); i >= 0 {
		pkg = pkg[:i]
	}
	// The package path is everything before the first dot after the
	// last slash (method keys have two trailing dots).
	slash := strings.LastIndexByte(pkg, '/')
	dot := strings.IndexByte(pkg[slash+1:], '.')
	if dot < 0 {
		return nil
	}
	pf := fs.Pkgs[pkg[:slash+1+dot]]
	if pf == nil {
		return nil
	}
	return pf.Funcs[key]
}

// factsEnvelope is the on-disk vetx framing. A version bump invalidates
// stale facts (the driver's selfHash already invalidates vet's action
// cache whenever the binary changes, so this is belt and braces for
// hand-kept files).
type factsEnvelope struct {
	Version int
	Pkgs    []*PackageFacts
}

// factsVersion is the current facts file format version.
const factsVersion = 1

// EncodeFacts serializes the set deterministically (packages sorted by
// path, map keys sorted by encoding/json).
func EncodeFacts(fs *FactSet) []byte {
	env := factsEnvelope{Version: factsVersion}
	if fs != nil {
		for _, pf := range fs.Pkgs {
			env.Pkgs = append(env.Pkgs, pf)
		}
	}
	sort.Slice(env.Pkgs, func(i, j int) bool { return env.Pkgs[i].Path < env.Pkgs[j].Path })
	data, err := json.Marshal(env)
	if err != nil {
		// Only unmarshalable types reach this; the envelope has none.
		panic(fmt.Sprintf("lintkit: encoding facts: %v", err))
	}
	return data
}

// DecodeFacts parses a facts file. Empty input decodes to an empty set
// (cmd/go pre-creates empty vetx files for packages without facts); a
// version mismatch also yields an empty set rather than an error, so a
// stale dependency file degrades to intraprocedural analysis instead of
// failing the build.
func DecodeFacts(data []byte) (*FactSet, error) {
	fs := NewFactSet()
	if len(data) == 0 {
		return fs, nil
	}
	var env factsEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("lintkit: decoding facts: %w", err)
	}
	if env.Version != factsVersion {
		return fs, nil
	}
	for _, pf := range env.Pkgs {
		fs.Add(pf)
	}
	return fs, nil
}
