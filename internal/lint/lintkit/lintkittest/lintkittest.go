// Package lintkittest is the analysistest counterpart for lintkit
// analyzers: it loads a fixture package from a testdata directory,
// runs analyzers over it, and compares the findings against `// want`
// comment expectations in the fixture sources.
//
// Expectation syntax, at the end of the offending line:
//
//	code() // want `substring or regexp`
//
// Multiple expectations on one line are allowed (repeat the marker).
// Every finding must match a want on its line and every want must be
// matched by a finding — both directions are errors, so fixtures pin
// the analyzer's exact diagnostic set.
package lintkittest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/lintkit"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run loads the package rooted at dir (a directory containing one Go
// package, e.g. "testdata/src/determinism/synth") and asserts the
// analyzers' findings match the fixture's want comments.
func Run(t *testing.T, dir string, analyzers ...*lintkit.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lintkit.Load(abs, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", dir, len(pkgs))
	}
	var diags []lintkit.Diagnostic
	for _, lp := range pkgs {
		res, err := lintkit.Run(lp, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", dir, err)
		}
		diags = append(diags, res.Diags...)
	}
	checkWants(t, abs, diags)
}

// wantKey identifies one expectation site.
type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants scans every .go file under dir for want comments and
// cross-checks them against diags.
func checkWants(t *testing.T, dir string, diags []lintkit.Diagnostic) {
	t.Helper()
	wants := make(map[wantKey][]*want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				key := wantKey{file: path, line: i + 1}
				wants[key] = append(wants[key], &want{re: re, raw: m[1]})
			}
		}
	}
	for _, d := range diags {
		key := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching `%s`, got none", k.file, k.line, w.raw)
			}
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Logf("all findings:\n%s", strings.Join(all, "\n"))
	}
}

// Findings runs analyzers over dir and returns the diagnostics without
// asserting wants — for tests that inspect the set directly.
func Findings(t *testing.T, dir string, analyzers ...*lintkit.Analyzer) []lintkit.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lintkit.Load(abs, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var diags []lintkit.Diagnostic
	for _, lp := range pkgs {
		res, err := lintkit.Run(lp, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", dir, err)
		}
		diags = append(diags, res.Diags...)
	}
	lintkit.SortDiagnostics(diags)
	return diags
}

// MustFind asserts at least one finding from analyzer matches pattern.
func MustFind(t *testing.T, diags []lintkit.Diagnostic, analyzer, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, d := range diags {
		if d.Analyzer == analyzer && re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("no %s finding matching %q; findings: %s", analyzer, pattern, fmt.Sprint(diags))
}
