package lintkit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Facts is the interprocedural fact set shared by every package in
	// one Load: the summaries of all non-standard packages in the build
	// graph (targets and in-module dependencies alike).
	Facts *FactSet
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -export -deps` run in dir and
// type-checks every directly matched (non-dependency) package from
// source. Standard-library imports resolve through the compiler export
// data the go command reports, so loading is exact, offline, and as
// fast as a regular build. Non-standard dependencies (the module's own
// packages) are additionally type-checked from source so their
// interprocedural facts (facts.go) can be summarized: the resulting
// FactSet is shared by every returned package, giving analyzers the
// same cross-package view the vettool protocol assembles from vetx
// files.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintkit: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets, factDeps []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintkit: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lintkit: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkg := p
		switch {
		case !p.DepOnly:
			targets = append(targets, &pkg)
		case !p.Standard && len(p.GoFiles) > 0:
			factDeps = append(factDeps, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	facts := NewFactSet()
	for _, p := range factDeps {
		lp, err := TypeCheck(p.ImportPath, fset, sourceFiles(p), imp, runtime.Version())
		if err != nil {
			// A dependency that fails source type-checking degrades to
			// no facts rather than failing the whole run; its export
			// data still serves the import graph.
			continue
		}
		facts.Add(SummarizePackage(lp.Path, lp.Fset, lp.Files, lp.Info))
	}
	var loaded []*LoadedPackage
	for _, p := range targets {
		lp, err := TypeCheck(p.ImportPath, fset, sourceFiles(p), imp, runtime.Version())
		if err != nil {
			return nil, err
		}
		facts.Add(SummarizePackage(lp.Path, lp.Fset, lp.Files, lp.Info))
		lp.Facts = facts
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// sourceFiles resolves a listed package's GoFiles against its directory.
func sourceFiles(p *listPackage) []string {
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = joinDir(p.Dir, f)
	}
	return files
}

func joinDir(dir, file string) string {
	if dir == "" || strings.HasPrefix(file, "/") || strings.HasPrefix(file, "\\") {
		return file
	}
	return dir + string(os.PathSeparator) + file
}

// exportDataImporter builds a types.Importer that resolves import
// paths to compiler export data files via resolve. The gc importer
// handles the archive/raw framing and caches packages internally.
func exportDataImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("lintkit: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// TypeCheck parses and type-checks one package from its source files.
// goVersion is the language version handed to go/types (e.g. from the
// vet config or runtime.Version()).
func TypeCheck(path string, fset *token.FileSet, filenames []string, imp types.Importer, goVersion string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintkit: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: langVersion(goVersion),
		// Analyzers only need a well-typed view of the code that exists;
		// soft errors (e.g. unused variables in fixtures) must not block
		// analysis, matching vet's tolerance.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: typecheck %s: %w", path, err)
	}
	return &LoadedPackage{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// langVersion normalizes a toolchain version ("go1.24.0", "devel ...")
// to the "go1.N" language version go/types accepts, or "" when it
// cannot tell (meaning "latest").
func langVersion(v string) string {
	if !strings.HasPrefix(v, "go1.") {
		return ""
	}
	rest := v[len("go1."):]
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			rest = rest[:i]
			break
		}
	}
	if rest == "" {
		return ""
	}
	return "go1." + rest
}
