package lintkit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Main is the entry point shared by every driver binary (cmd/longtailvet).
// It speaks two protocols:
//
//   - Standalone: `longtailvet [flags] ./...` loads the matched packages
//     via `go list -export` and prints findings in vet format. Exit code
//     2 means findings, 1 means an internal error, 0 means clean.
//
//   - Vettool: when cmd/go drives it via `go vet -vettool=$(which
//     longtailvet)`, the binary is invoked with -flags (describe flags as
//     JSON), -V=full (print a version line incorporating the binary's own
//     content hash, so vet's result cache invalidates when the analyzers
//     change), and finally once per package with a JSON config file
//     argument (*.cfg) listing sources and export data. Dependencies
//     arrive with VetxOnly=true: module-internal ones are type-checked
//     and summarized into the facts file cmd/go threads to importers
//     (the interprocedural analyzers' transport); standard-library ones
//     get an empty facts file and no analysis.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	version := fs.String("V", "", "print version and exit (-V=full, vettool protocol)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON instead of vet text")
	for _, a := range analyzers {
		for _, f := range a.Flags {
			fs.StringVar(&f.Value, f.Name, f.Value, f.Usage)
		}
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <packages>   (standalone)\n", progname)
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which %s) <packages>\n\n", progname)
		fmt.Fprintf(os.Stderr, "analyzers:\n")
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	switch {
	case *printFlags:
		describeFlags(analyzers)
		os.Exit(0)
	case *version != "":
		// The line format cmd/go's buildid parser accepts; the content
		// hash makes vet's action cache sensitive to analyzer changes.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettoolRun(args[0], analyzers, *jsonOut))
	}
	if len(args) == 0 {
		args = []string{"."}
	}
	os.Exit(standaloneRun(args, analyzers, *jsonOut))
}

// describeFlags prints the JSON flag description cmd/go requests with
// -flags before relaying user flags to the tool.
func describeFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		for _, f := range a.Flags {
			out = append(out, jsonFlag{Name: f.Name, Usage: f.Usage})
		}
	}
	data, _ := json.Marshal(out)
	fmt.Println(string(data))
}

// selfHash hashes the executable so the version line (vet's cache key)
// changes whenever the analyzers are rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:40]
}

// jsonFinding is the machine-readable finding shape `-json` emits.
type jsonFinding struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col,omitempty"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	SuppressedBy string `json:"suppressedBy,omitempty"`
}

// jsonReport is the `-json` document: active findings plus every
// //lint:allow-suppressed finding with its documented reason — the
// machine-readable audit trail CI archives as LINT_report.json.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
}

func toJSONFindings(diags []Diagnostic) []jsonFinding {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message, SuppressedBy: d.SuppressReason,
		})
	}
	return out
}

// emit prints findings and returns the process exit code. Only active
// findings fail the run; suppressed ones appear in -json output only.
func emit(diags, suppressed []Diagnostic, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(jsonReport{
			Findings:   toJSONFindings(diags),
			Suppressed: toJSONFindings(suppressed),
		})
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// standaloneRun is the `longtailvet ./...` path.
func standaloneRun(patterns []string, analyzers []*Analyzer, jsonOut bool) int {
	pkgs, err := Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var diags, suppressed []Diagnostic
	for _, lp := range pkgs {
		res, err := Run(lp, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		diags = append(diags, res.Diags...)
		suppressed = append(suppressed, res.Suppressed...)
	}
	SortDiagnostics(diags)
	SortDiagnostics(suppressed)
	return emit(diags, suppressed, jsonOut)
}

// vetConfig mirrors the JSON config cmd/go writes for vet tools (the
// unitchecker protocol). PackageVetx/VetxOutput carry the
// interprocedural facts files between per-package invocations exactly
// like gc export data; Standard marks standard-library packages, which
// get an empty facts file instead of a source type-check.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettoolRun analyzes one package as directed by a vet config file.
// Every non-standard package — dependencies included, which arrive
// with VetxOnly=true — is type-checked and summarized, and its facts
// file re-exports the transitive facts it imported, so each invocation
// only needs its direct dependencies' vetx files.
func vettoolRun(cfgPath string, analyzers []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "longtailvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func(facts *FactSet) int {
		if cfg.VetxOutput == "" {
			return 0
		}
		var out []byte
		if facts != nil {
			out = EncodeFacts(facts)
		}
		if err := os.WriteFile(cfg.VetxOutput, out, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if cfg.Standard[cfg.ImportPath] || isStdUnit(&cfg) {
		// Standard-library dependency: no facts, nothing to analyze —
		// but cmd/go requires the vetx file to exist. (cfg.Standard only
		// marks the unit's imports, so the unit's own origin is checked
		// against GOROOT: the standalone loader never summarizes the
		// standard library, and the two modes must produce identical
		// findings.)
		return writeVetx(nil)
	}
	facts := NewFactSet()
	for _, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // missing dependency facts degrade, not fail
		}
		if dep, err := DecodeFacts(data); err == nil {
			for _, pf := range dep.Pkgs {
				facts.Add(pf)
			}
		}
	}
	fset := token.NewFileSet()
	compilerImp := exportDataImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImp.Import(path)
	})
	lp, err := TypeCheck(cfg.ID, fset, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if code := writeVetx(facts); code != 0 {
			return code
		}
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	facts.Add(SummarizePackage(lp.Path, lp.Fset, lp.Files, lp.Info))
	lp.Facts = facts
	if code := writeVetx(facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		// A dependency: facts-only invocation, nothing to analyze.
		return 0
	}
	res, err := Run(lp, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return emit(res.Diags, res.Suppressed, jsonOut)
}

// isStdUnit reports whether the unit's sources live under GOROOT —
// cmd/go vets standard-library dependencies for their facts files, but
// this suite's facts describe the module's own code only.
func isStdUnit(cfg *vetConfig) bool {
	if len(cfg.GoFiles) == 0 {
		return false
	}
	goroot := runtime.GOROOT()
	if goroot == "" {
		return false
	}
	rel, err := filepath.Rel(filepath.Clean(goroot), filepath.Clean(cfg.GoFiles[0]))
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
