package lintkit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Main is the entry point shared by every driver binary (cmd/longtailvet).
// It speaks two protocols:
//
//   - Standalone: `longtailvet [flags] ./...` loads the matched packages
//     via `go list -export` and prints findings in vet format. Exit code
//     2 means findings, 1 means an internal error, 0 means clean.
//
//   - Vettool: when cmd/go drives it via `go vet -vettool=$(which
//     longtailvet)`, the binary is invoked with -flags (describe flags as
//     JSON), -V=full (print a version line incorporating the binary's own
//     content hash, so vet's result cache invalidates when the analyzers
//     change), and finally once per package with a JSON config file
//     argument (*.cfg) listing sources and export data. Dependencies
//     arrive with VetxOnly=true and are skipped after writing the
//     (empty) facts file cmd/go expects — the suite needs no
//     cross-package facts.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	version := fs.String("V", "", "print version and exit (-V=full, vettool protocol)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON instead of vet text")
	for _, a := range analyzers {
		for _, f := range a.Flags {
			fs.StringVar(&f.Value, f.Name, f.Value, f.Usage)
		}
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <packages>   (standalone)\n", progname)
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which %s) <packages>\n\n", progname)
		fmt.Fprintf(os.Stderr, "analyzers:\n")
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	switch {
	case *printFlags:
		describeFlags(analyzers)
		os.Exit(0)
	case *version != "":
		// The line format cmd/go's buildid parser accepts; the content
		// hash makes vet's action cache sensitive to analyzer changes.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettoolRun(args[0], analyzers, *jsonOut))
	}
	if len(args) == 0 {
		args = []string{"."}
	}
	os.Exit(standaloneRun(args, analyzers, *jsonOut))
}

// describeFlags prints the JSON flag description cmd/go requests with
// -flags before relaying user flags to the tool.
func describeFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		for _, f := range a.Flags {
			out = append(out, jsonFlag{Name: f.Name, Usage: f.Usage})
		}
	}
	data, _ := json.Marshal(out)
	fmt.Println(string(data))
}

// selfHash hashes the executable so the version line (vet's cache key)
// changes whenever the analyzers are rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:40]
}

// emit prints findings and returns the process exit code.
func emit(diags []Diagnostic, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// standaloneRun is the `longtailvet ./...` path.
func standaloneRun(patterns []string, analyzers []*Analyzer, jsonOut bool) int {
	pkgs, err := Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var diags []Diagnostic
	for _, lp := range pkgs {
		ds, err := Run(lp, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		diags = append(diags, ds...)
	}
	SortDiagnostics(diags)
	return emit(diags, jsonOut)
}

// vetConfig mirrors the JSON config cmd/go writes for vet tools (the
// unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettoolRun analyzes one package as directed by a vet config file.
func vettoolRun(cfgPath string, analyzers []*Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "longtailvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file to exist even though this suite
	// records no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// A dependency: facts-only invocation, nothing to analyze.
		return 0
	}
	fset := token.NewFileSet()
	compilerImp := exportDataImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImp.Import(path)
	})
	lp, err := TypeCheck(cfg.ID, fset, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := Run(lp, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return emit(diags, jsonOut)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
