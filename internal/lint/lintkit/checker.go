package lintkit

import "fmt"

// Run applies each analyzer to the loaded package and returns the
// surviving findings in stable order. Findings covered by a
// //lint:allow directive are dropped; malformed directives (missing
// analyzer or reason) are reported as findings themselves, attributed
// to the pseudo-analyzer "allow".
func Run(lp *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildAllowIndex(lp.Fset, lp.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     lp.Path,
			Fset:     lp.Fset,
			Files:    lp.Files,
			Pkg:      lp.Pkg,
			Info:     lp.Info,
			report: func(d Diagnostic) {
				if !idx.allows(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lintkit: analyzer %s on %s: %w", a.Name, lp.Path, err)
		}
	}
	for _, m := range idx.missingReason {
		diags = append(diags, Diagnostic{
			Pos:      lp.Fset.Position(m.pos),
			Analyzer: "allow",
			Message:  "lint:allow directive must name an analyzer and give a reason: //lint:allow <analyzer> <reason>",
		})
	}
	SortDiagnostics(diags)
	return diags, nil
}
