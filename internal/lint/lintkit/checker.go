package lintkit

import "fmt"

// Result is one package's analysis outcome: the surviving findings,
// plus the findings a //lint:allow directive suppressed (kept, with the
// directive's reason, for -json reports and the DESIGN.md audit table).
type Result struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
}

// Run applies each analyzer to the loaded package and returns the
// findings in stable order. Findings covered by a //lint:allow
// directive move to Result.Suppressed; malformed directives (missing
// analyzer or reason) are reported as findings themselves, attributed
// to the pseudo-analyzer "allow".
func Run(lp *LoadedPackage, analyzers []*Analyzer) (*Result, error) {
	idx := buildAllowIndex(lp.Fset, lp.Files)
	res := &Result{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     lp.Path,
			Fset:     lp.Fset,
			Files:    lp.Files,
			Pkg:      lp.Pkg,
			Info:     lp.Info,
			Facts:    lp.Facts,
			report: func(d Diagnostic) {
				if ok, reason := idx.allows(d.Analyzer, d.Pos.Filename, d.Pos.Line); ok {
					d.Suppressed = true
					d.SuppressReason = reason
					res.Suppressed = append(res.Suppressed, d)
					return
				}
				res.Diags = append(res.Diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lintkit: analyzer %s on %s: %w", a.Name, lp.Path, err)
		}
	}
	for _, m := range idx.missingReason {
		res.Diags = append(res.Diags, Diagnostic{
			Pos:      lp.Fset.Position(m.pos),
			Analyzer: "allow",
			Message:  "lint:allow directive must name an analyzer and give a reason: //lint:allow <analyzer> <reason>",
		})
	}
	SortDiagnostics(res.Diags)
	SortDiagnostics(res.Suppressed)
	return res, nil
}
