package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllowComment(t *testing.T) {
	cases := []struct {
		text             string
		analyzer, reason string
		ok               bool
	}{
		{"//lint:allow errwrap the wire format is flattened", "errwrap", "the wire format is flattened", true},
		{"//lint:allow errwrap", "errwrap", "", true},
		{"//lint:allow", "", "", true},
		{"//lint:allow errwrap // trailing marker", "errwrap", "", true},
		{"// a normal comment", "", "", false},
		{"//lint:ignore X Y", "", "", false},
	}
	for _, c := range cases {
		analyzer, reason, ok := parseAllowComment(&ast.Comment{Text: c.text})
		if analyzer != c.analyzer || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllowComment(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, analyzer, reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

func TestAllowIndexScopes(t *testing.T) {
	src := `package p

//lint:allow alpha whole decl is exempt
func f() {
	_ = 1 //lint:allow beta same line
	//lint:allow gamma line above
	_ = 2
}

func g() {
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildAllowIndex(fset, []*ast.File{f})
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"alpha", 4, true}, // decl-wide from doc comment
		{"alpha", 8, true}, // still inside f's declaration
		{"alpha", 11, false} /* g is not covered */, {"beta", 5, true},
		{"beta", 7, false},
		{"gamma", 7, true}, // directive on the line above
		{"gamma", 5, false},
	}
	for _, c := range cases {
		got, reason := idx.allows(c.analyzer, "p.go", c.line)
		if got != c.want {
			t.Errorf("allows(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
		if got && reason == "" {
			t.Errorf("allows(%s, line %d) suppressed without a reason", c.analyzer, c.line)
		}
	}
}

func TestLangVersion(t *testing.T) {
	cases := map[string]string{
		"go1.24.0":     "go1.24",
		"go1.22":       "go1.22",
		"devel +abc":   "",
		"go1.24.0-foo": "go1.24",
	}
	for in, want := range cases {
		if got := langVersion(in); got != want {
			t.Errorf("langVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPathBase(t *testing.T) {
	cases := map[string]string{
		"repro/internal/serve":                             "serve",
		"repro/internal/serve [repro/internal/serve.test]": "serve",
		"serve": "serve",
	}
	for in, want := range cases {
		if got := PathBase(in); got != want {
			t.Errorf("PathBase(%q) = %q, want %q", in, got, want)
		}
	}
}
