package lintkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive. A finding is suppressed when a comment of
// the form
//
//	//lint:allow <analyzer> <reason>
//
// appears on the finding's line, on the line immediately above it, or
// in the doc comment of the enclosing top-level declaration (which
// suppresses that analyzer for the whole declaration). The reason is
// mandatory: an allow directive without one is itself reported, so
// every escape hatch in the tree documents why it is safe.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
}

// allowIndex answers "is this diagnostic suppressed?" for one package.
type allowIndex struct {
	// byLine maps file -> line -> directives on that line (the
	// directive's own line; a directive suppresses its line and the one
	// below, covering both same-line and line-above placement).
	byLine map[string]map[int][]allowEntry
	// spans are declaration-wide allowances from doc comments.
	spans []allowSpan
	// missingReason collects malformed directives to report.
	missingReason []allowDirective
}

// allowEntry is one well-formed directive's payload.
type allowEntry struct {
	analyzer string
	reason   string
}

type allowSpan struct {
	file       string
	start, end int // line range, inclusive
	analyzer   string
	reason     string
}

// parseAllowComment extracts the directive from one comment, if any.
// ok distinguishes "not a directive" from "directive with empty
// analyzer/reason".
func parseAllowComment(c *ast.Comment) (analyzer, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	// Anything after an embedded "//" is a comment on the directive
	// (test fixtures use this for want markers), not part of the reason.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return "", "", true
	}
	parts := strings.SplitN(rest, " ", 2)
	analyzer = parts[0]
	if len(parts) == 2 {
		reason = strings.TrimSpace(parts[1])
	}
	return analyzer, reason, true
}

// buildAllowIndex scans every comment in the package's files.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int][]allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, reason, ok := parseAllowComment(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if analyzer == "" || reason == "" {
					idx.missingReason = append(idx.missingReason, allowDirective{
						analyzer: analyzer, reason: reason,
						file: pos.Filename, line: pos.Line, pos: c.Pos(),
					})
					continue
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]allowEntry)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], allowEntry{analyzer: analyzer, reason: reason})
			}
		}
		// Doc-comment directives cover their whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				analyzer, reason, ok := parseAllowComment(c)
				if !ok || analyzer == "" || reason == "" {
					continue // malformed ones were collected above
				}
				idx.spans = append(idx.spans, allowSpan{
					file:     fset.Position(decl.Pos()).Filename,
					start:    fset.Position(decl.Pos()).Line,
					end:      fset.Position(decl.End()).Line,
					analyzer: analyzer,
					reason:   reason,
				})
			}
		}
	}
	return idx
}

// allows reports whether a finding from analyzer at (file, line) is
// suppressed, and by which directive's reason.
func (idx *allowIndex) allows(analyzer, file string, line int) (bool, string) {
	if lines, ok := idx.byLine[file]; ok {
		for _, l := range []int{line, line - 1} {
			for _, e := range lines[l] {
				if e.analyzer == analyzer {
					return true, e.reason
				}
			}
		}
	}
	for _, s := range idx.spans {
		if s.analyzer == analyzer && s.file == file && line >= s.start && line <= s.end {
			return true, s.reason
		}
	}
	return false, ""
}
