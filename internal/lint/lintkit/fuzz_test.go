package lintkit

import (
	"bytes"
	"go/ast"
	"strings"
	"testing"
)

// FuzzParseAllowDirective hammers the //lint:allow parser with
// arbitrary comment text: it must never panic, and its contract holds
// on everything it recognizes. ok means "this comment is a lint:allow
// directive" — a malformed one (missing analyzer or reason) still
// parses, because the checker turns those into findings rather than
// silently ignoring them; but a reason never appears without an
// analyzer, non-directives never leak fields, and the embedded-"//"
// truncation never survives into either field.
func FuzzParseAllowDirective(f *testing.F) {
	f.Add("//lint:allow determinism seeded clock drives the replay")
	f.Add("//lint:allow lockorder")
	f.Add("//lint:allow  metricdrift  reason with  spaces // trailing note")
	f.Add("// lint:allow determinism space breaks the directive")
	f.Add("//lint:allow")
	f.Add("/*lint:allow block comments are not directives*/")
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := parseAllowComment(&ast.Comment{Text: text})
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("rejected comment %q leaked fields %q/%q", text, analyzer, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//lint:allow") {
			t.Fatalf("accepted comment %q without the directive prefix", text)
		}
		if analyzer == "" && reason != "" {
			t.Fatalf("directive %q produced a reason %q with no analyzer", text, reason)
		}
		if strings.Contains(analyzer, "//") || strings.Contains(reason, "//") {
			t.Fatalf("directive %q kept an embedded comment: %q / %q", text, analyzer, reason)
		}
	})
}

// FuzzFactsRoundTrip feeds arbitrary bytes to the facts decoder: it
// must never panic, and any input it accepts must re-encode into a
// stable fixed point — decode(encode(decode(x))) encodes to the same
// bytes, the property the vetx transport relies on when facts files
// are re-exported across compilation units.
func FuzzFactsRoundTrip(f *testing.F) {
	seed := NewFactSet()
	seed.Add(&PackageFacts{
		Path: "repro/internal/serve",
		Funcs: map[string]*FuncFact{
			"serve.Engine.Classify": {
				Acquires:    []string{"serve.Engine.mu"},
				Edges:       []LockEdge{{From: "serve.Engine.mu", To: "serve.Ledger.mu", File: "engine.go", Line: 7}},
				Calls:       []string{"journal.Journal.Append"},
				CallsUnder:  []CallUnder{{Callee: "journal.Journal.Append", Held: []string{"serve.Engine.mu"}, File: "engine.go", Line: 9}},
				ClosureArgs: []ClosureArg{{Callee: "serve.run", Param: 0, Lit: "serve.Engine.Classify$1", File: "engine.go", Line: 11}},
				Signals:     true,
				CtxParam:    true,
			},
		},
		Metrics: []MetricUse{{Name: "longtail_requests_total", File: "metrics.go", Line: 3}},
	})
	f.Add(EncodeFacts(seed))
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte(`{"version":1,"pkgs":null}`))
	f.Add([]byte(`{"version":99,"pkgs":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs1, err := DecodeFacts(data)
		if err != nil {
			return
		}
		enc1 := EncodeFacts(fs1)
		fs2, err := DecodeFacts(enc1)
		if err != nil {
			t.Fatalf("own encoding failed to decode: %v\n%s", err, enc1)
		}
		enc2 := EncodeFacts(fs2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("facts round trip is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
	})
}
