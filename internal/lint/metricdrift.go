package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/lintkit"
)

// Metricdrift keeps the longtail_* metric namespace coherent. The
// exposition surface is the repo's observable contract — dashboards
// and the paper's tables key on exact metric names — so every name a
// package emits (collected into the cross-package facts from its
// string literals) must:
//
//   - be snake_case: lowercase, digits, single underscores;
//   - be spelled exactly one way tree-wide: two names that differ only
//     in word segmentation or case (longtail_requests_total vs
//     longtail_request_stotal) are drift, and every undocumented
//     spelling of the pair is flagged;
//   - appear in the metric documentation (default: DESIGN.md and
//     README.md at the module root; override with -metricdrift.docs).
//     Histogram series suffixes (_bucket, _sum, _count) resolve to
//     their base name first.
//
// Checks run in that severity order, one finding per name. Test files
// never contribute names. When no documentation file can be read the
// documentation check is skipped rather than failing every metric.
var Metricdrift = &lintkit.Analyzer{
	Name: "metricdrift",
	Doc:  "longtail_* metric names must be snake_case, uniquely spelled tree-wide, and documented",
	Flags: []*lintkit.Flag{
		{Name: "metricdrift.docs", Usage: "comma-separated metric documentation files (relative to the module root unless absolute)", Value: "DESIGN.md,README.md"},
	},
	Run: runMetricdrift,
}

// metricSnakeRE is the canonical shape: words of lowercase letters and
// digits joined by single underscores.
var metricSnakeRE = regexp.MustCompile(`^longtail(_[a-z0-9]+)+$`)

func runMetricdrift(pass *lintkit.Pass) error {
	own := pass.OwnFacts()
	if own == nil || len(own.Metrics) == 0 {
		return nil
	}
	spellings := collectSpellings(pass.Facts)
	docs := loadMetricDocs(pass.Analyzer.Lookup("metricdrift.docs").Value, own.Metrics[0].File)
	for _, m := range own.Metrics {
		base := histogramBase(m.Name)
		documented := docs != nil && (docs[m.Name] || docs[base])
		switch {
		case !metricSnakeRE.MatchString(m.Name):
			pass.ReportPosition(m.File, m.Line,
				"metric %s is not snake_case; exposition names are lowercase words joined by single underscores", m.Name)
		case driftsAgainst(m.Name, spellings, docs) != "":
			pass.ReportPosition(m.File, m.Line,
				"metric %s conflicts with spelling %s elsewhere in the tree; one canonical spelling per metric",
				m.Name, driftsAgainst(m.Name, spellings, docs))
		case docs != nil && !documented:
			pass.ReportPosition(m.File, m.Line,
				"metric %s is not documented in %s; every exposition name needs a doc-table entry",
				m.Name, pass.Analyzer.Lookup("metricdrift.docs").Value)
		}
	}
	return nil
}

// collectSpellings maps each normalized metric key (case and
// underscores stripped) to every distinct spelling seen tree-wide.
func collectSpellings(facts *lintkit.FactSet) map[string][]string {
	out := make(map[string][]string)
	if facts == nil {
		return out
	}
	seen := make(map[string]bool)
	var paths []string
	for p := range facts.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		for _, m := range facts.Pkgs[p].Metrics {
			name := histogramBase(m.Name)
			if seen[name] {
				continue
			}
			seen[name] = true
			key := normalizeMetric(name)
			out[key] = append(out[key], name)
		}
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// driftsAgainst returns a conflicting spelling of name, or "". The
// documented spelling of a pair is canonical: it is exempt when its
// rival is undocumented, so only the drifted copy gets flagged.
func driftsAgainst(name string, spellings map[string][]string, docs map[string]bool) string {
	base := histogramBase(name)
	for _, other := range spellings[normalizeMetric(base)] {
		if other == base {
			continue
		}
		if docs != nil && docs[base] && !docs[other] {
			continue
		}
		return other
	}
	return ""
}

// normalizeMetric reduces a metric name to its drift-equivalence key.
func normalizeMetric(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, "_", ""))
}

// histogramBase strips the per-series suffixes a histogram exposition
// adds to its base name.
func histogramBase(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// loadMetricDocs reads the documented metric names from the configured
// doc files. Relative paths resolve against the module root found by
// walking up from anchorFile. Returns nil when nothing was readable.
func loadMetricDocs(docsFlag, anchorFile string) map[string]bool {
	root := moduleRoot(filepath.Dir(anchorFile))
	var docs map[string]bool
	for _, p := range strings.Split(docsFlag, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !filepath.IsAbs(p) {
			if root == "" {
				continue
			}
			p = filepath.Join(root, p)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if docs == nil {
			docs = make(map[string]bool)
		}
		for _, name := range metricDocNameRE.FindAllString(string(data), -1) {
			docs[name] = true
		}
	}
	return docs
}

// metricDocNameRE matches metric names in documentation prose/tables.
var metricDocNameRE = regexp.MustCompile(`longtail_[A-Za-z0-9_]+`)

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) string {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
