package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/lintkit"
)

// Lockorder detects potential deadlocks from inconsistent mutex
// acquisition order, using the interprocedural facts lintkit computes
// per package. Three checks:
//
//   - Lock-order cycles: every "lock B acquired while lock A held" site
//     — whether both acquisitions are in one body, the second comes
//     from a callee's (transitive) acquisitions, or from a closure run
//     under a callee's lock (the journal's run-under-my-lock shape) —
//     contributes a directed edge A→B to a global, type-level
//     acquisition graph spanning every package in the build. An edge
//     that closes a cycle is a potential deadlock and is reported at
//     the edge's own site, with the cycle spelled out.
//   - Double locks: re-acquiring an exclusive lock already held on the
//     same syntactic path (m.mu.Lock(); m.mu.Lock()) self-deadlocks.
//     Shared RLock/RLock pairs are fine.
//   - Mutex copies: assigning through a pointer dereference whose type
//     contains a mutex (snapshot := *s) clones the lock, silently
//     splitting one critical section into two.
//
// Lock identities are type-level ("pkg.Type.field", "pkg.var"), so the
// hierarchy is about code structure, not instances; local mutexes have
// no global identity and are exempt. The model is lexical — an Unlock
// before a call releases the hold — matching how the repo writes
// unlock-then-call sequences.
var Lockorder = &lintkit.Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be globally consistent (no lock-order cycles, double locks, or lock copies)",
	Run:  runLockorder,
}

func runLockorder(pass *lintkit.Pass) error {
	checkMutexCopies(pass)
	own := pass.OwnFacts()
	if own == nil {
		return nil
	}
	g := &lockGraph{facts: pass.Facts, memo: make(map[string]map[string]bool)}
	adj := g.globalEdges()

	reported := make(map[string]bool)
	for _, name := range sortedFuncs(own) {
		ff := own.Funcs[name]
		for _, dl := range ff.DoubleLocks {
			key := "dbl|" + dl.From + "|" + dl.File + "|" + strconv.Itoa(dl.Line)
			if reported[key] {
				continue
			}
			reported[key] = true
			pass.ReportPosition(dl.File, dl.Line,
				"%s acquired while already held on the same path in %s — an exclusive re-lock self-deadlocks",
				shortLock(dl.To), shortFunc(name))
		}
		for _, e := range g.funcEdges(ff) {
			cyc := cyclePath(adj, e.To, e.From)
			if cyc == nil {
				continue
			}
			key := "cyc|" + e.From + "|" + e.To + "|" + e.File + "|" + strconv.Itoa(e.Line)
			if reported[key] {
				continue
			}
			reported[key] = true
			names := []string{shortLock(e.From)}
			for _, l := range cyc {
				names = append(names, shortLock(l))
			}
			pass.ReportPosition(e.File, e.Line,
				"lock order cycle: %s — another path acquires these locks in the opposite order; pick one global order",
				strings.Join(names, " -> "))
		}
	}
	return nil
}

// lockGraph resolves transitive lock acquisitions over the facts'
// call graph.
type lockGraph struct {
	facts *lintkit.FactSet
	memo  map[string]map[string]bool
	stack map[string]bool
}

// acquires returns every lock the function (transitively) acquires:
// its own, its static callees', and those of closures it passes to
// callees that invoke them.
func (g *lockGraph) acquires(key string) map[string]bool {
	if m, ok := g.memo[key]; ok {
		return m
	}
	if g.stack == nil {
		g.stack = make(map[string]bool)
	}
	if g.stack[key] {
		return nil // recursion: the cycle contributes nothing new
	}
	g.stack[key] = true
	defer delete(g.stack, key)
	out := make(map[string]bool)
	if ff := g.facts.Func(key); ff != nil {
		for _, a := range ff.Acquires {
			out[a] = true
		}
		for _, c := range ff.Calls {
			for a := range g.acquires(c) {
				out[a] = true
			}
		}
		for _, ca := range ff.ClosureArgs {
			if g.calleeInvokes(ca) {
				for a := range g.acquires(ca.Lit) {
					out[a] = true
				}
			}
		}
	}
	g.memo[key] = out
	return out
}

// calleeInvokes reports whether the closure-arg's callee invokes that
// parameter (under any lock set).
func (g *lockGraph) calleeInvokes(ca lintkit.ClosureArg) bool {
	cf := g.facts.Func(ca.Callee)
	if cf == nil {
		return false
	}
	for _, pi := range cf.InvokesParamUnder {
		if pi.Param == ca.Param {
			return true
		}
	}
	return false
}

// funcEdges expands one function's facts into concrete held→acquired
// edges: direct in-body pairs, calls made under locks crossed with the
// callee's transitive acquisitions, and closures handed to callees
// that run them under their own locks.
func (g *lockGraph) funcEdges(ff *lintkit.FuncFact) []lintkit.LockEdge {
	edges := append([]lintkit.LockEdge(nil), ff.Edges...)
	for _, cu := range ff.CallsUnder {
		for a := range g.acquires(cu.Callee) {
			for _, h := range cu.Held {
				if h != a {
					edges = append(edges, lintkit.LockEdge{From: h, To: a, File: cu.File, Line: cu.Line})
				}
			}
		}
	}
	for _, ca := range ff.ClosureArgs {
		cf := g.facts.Func(ca.Callee)
		if cf == nil {
			continue
		}
		for _, pi := range cf.InvokesParamUnder {
			if pi.Param != ca.Param {
				continue
			}
			for a := range g.acquires(ca.Lit) {
				for _, h := range pi.Held {
					if h != a {
						edges = append(edges, lintkit.LockEdge{From: h, To: a, File: ca.File, Line: ca.Line})
					}
				}
			}
		}
	}
	sortEdges(edges)
	return edges
}

// globalEdges builds the acquisition graph over every package in the
// fact set, keeping one witness edge per ordered pair.
func (g *lockGraph) globalEdges() map[string]map[string]bool {
	adj := make(map[string]map[string]bool)
	var paths []string
	for p := range g.facts.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pf := g.facts.Pkgs[p]
		for _, name := range sortedFuncs(pf) {
			for _, e := range g.funcEdges(pf.Funcs[name]) {
				if adj[e.From] == nil {
					adj[e.From] = make(map[string]bool)
				}
				adj[e.From][e.To] = true
			}
		}
	}
	return adj
}

// cyclePath returns the lock sequence from `from` back to `to` through
// the acquisition graph (BFS, deterministic order), or nil when `to`
// is unreachable — i.e. the edge to→from closes no cycle.
func cyclePath(adj map[string]map[string]bool, from, to string) []string {
	parent := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var next []string
		for n := range adj[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, seen := parent[n]; seen {
				continue
			}
			parent[n] = cur
			if n == to {
				var path []string
				for cur := n; cur != ""; cur = parent[cur] {
					path = append([]string{cur}, path...)
				}
				return path
			}
			queue = append(queue, n)
		}
	}
	return nil
}

// checkMutexCopies flags value copies made by dereferencing a pointer
// to a mutex-bearing type.
func checkMutexCopies(pass *lintkit.Pass) {
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				star, ok := ast.Unparen(rhs).(*ast.StarExpr)
				if !ok {
					continue
				}
				t := pass.TypeOf(star)
				if t != nil && typeHasMutex(t, make(map[types.Type]bool)) {
					pass.Reportf(rhs.Pos(),
						"dereference copies %s, which contains a mutex — the copy is a distinct lock guarding nothing",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
			return true
		})
	}
}

// typeHasMutex reports whether t contains a sync.Mutex or sync.RWMutex
// (directly, or through struct fields and arrays).
func typeHasMutex(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasMutex(u.Elem(), seen)
	}
	return false
}

// shortLock trims the package path off a lock identity, keeping the
// last path segment ("repro/internal/journal.Journal.mu" → "journal.Journal.mu").
func shortLock(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// shortFunc trims the package path off a canonical function key.
func shortFunc(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// sortedFuncs returns the package's function keys in stable order.
func sortedFuncs(pf *lintkit.PackageFacts) []string {
	names := make([]string, 0, len(pf.Funcs))
	for n := range pf.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortEdges(edges []lintkit.LockEdge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
}
