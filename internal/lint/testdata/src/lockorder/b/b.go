// Package b is the dependency side of the lockorder fixture: its lock
// events reach the analyzing package only through serialized facts,
// proving the cross-package plumbing.
package b

import "sync"

var muB sync.Mutex

// Do acquires the package lock briefly.
func Do() {
	muB.Lock()
	muB.Unlock()
}

// Take runs f while holding muB — the run-under-my-lock shape that
// gives callers' closures edges from muB.
func Take(f func()) {
	muB.Lock()
	f()
	muB.Unlock()
}
