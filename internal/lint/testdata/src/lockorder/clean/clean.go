// Package clean is the lockorder negative fixture: every path that
// holds both locks acquires them in the same order, sequential
// lock/unlock pairs produce no edges (the lexical model), and shared
// RLock pairs are not double locks.
package clean

import (
	"sync"

	"repro/internal/lint/testdata/src/lockorder/b"
)

var mu sync.Mutex

var rw sync.RWMutex

// Both nests consistently: mu before muB, everywhere.
func Both() {
	mu.Lock()
	b.Do()
	mu.Unlock()
}

// Deferred keeps mu held to the end of the body; still mu -> muB.
func Deferred() {
	mu.Lock()
	defer mu.Unlock()
	b.Do()
}

// UnlockThen releases before calling into b: no edge in either
// direction, so no cycle with Both.
func UnlockThen() {
	mu.Lock()
	mu.Unlock()
	b.Do()
}

// PlainClosure hands b a closure that takes no locks.
func PlainClosure() {
	done := false
	b.Take(func() { done = true })
	_ = done
}

// SharedReaders re-enters a read lock: legal for RWMutex readers.
func SharedReaders() {
	rw.RLock()
	rw.RLock()
	rw.RUnlock()
	rw.RUnlock()
}
