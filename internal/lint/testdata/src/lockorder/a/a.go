// Package a is the lockorder positive fixture: One establishes
// muA -> muB through a call made under muA, Two establishes
// muB -> muA through a closure run under b's lock — a cross-package
// lock-order cycle. Dbl self-deadlocks, Snapshot copies a lock.
package a

import (
	"sync"

	"repro/internal/lint/testdata/src/lockorder/b"
)

var muA sync.Mutex

// One acquires muA, then calls into b, which acquires muB: muA -> muB.
func One() {
	muA.Lock()
	b.Do() // want `lock order cycle`
	muA.Unlock()
}

// Two hands b a closure that acquires muA; b runs it under muB:
// muB -> muA, closing the cycle.
func Two() {
	b.Take(func() { // want `lock order cycle`
		muA.Lock()
		muA.Unlock()
	})
}

// Counter carries its own lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Dbl re-locks the same mutex on the same path.
func Dbl(c *Counter) {
	c.mu.Lock()
	c.mu.Lock() // want `already held`
	c.mu.Unlock()
	c.mu.Unlock()
}

// Snapshot copies the counter — and its lock — through a dereference.
func Snapshot(c *Counter) int {
	dup := *c // want `contains a mutex`
	return dup.n
}
