// Package serve is the lockguard fixture. The bad cases mirror real
// bugs this analyzer exists to catch — most importantly the PR 3
// compaction bug, where a snapshot of guarded state was captured
// BEFORE the write lock was taken, so a concurrent append could land
// in a segment the compaction was about to delete.
package serve

import "sync"

type ledger struct {
	mu sync.Mutex
	// guarded by mu
	pending map[string][]byte
	results map[string][]byte // guarded by mu
	order   []string          // guarded by bogus // want `the struct has no field bogus`

	statsMu sync.RWMutex
	// counts is guarded by statsMu.
	counts map[string]int
}

// Good: lock taken before every guarded access.
func (l *ledger) accept(id string, body []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending[id] = body
}

// Good: RLock counts as holding the guard.
func (l *ledger) count(id string) int {
	l.statsMu.RLock()
	defer l.statsMu.RUnlock()
	return l.counts[id]
}

// Good: the Locked suffix promises the caller holds mu.
func (l *ledger) storeLocked(id string, body []byte) {
	l.results[id] = body
}

// Bad: no lock anywhere in the method.
func (l *ledger) lookupRacy(id string) []byte {
	return l.results[id] // want `results is guarded by mu`
}

// Bad — the PR 3 compaction shape: the guarded state is captured into
// a snapshot BEFORE the lock is taken, so the capture races with
// concurrent writers even though the method does lock later.
func (l *ledger) compactRacy() map[string][]byte {
	snapshot := make(map[string][]byte, len(l.pending)) // want `pending is guarded by mu`
	for id, body := range l.pending {                   // want `pending is guarded by mu`
		snapshot[id] = body
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending = map[string][]byte{}
	return snapshot
}

// Good — the fixed compaction shape: capture under the lock.
func (l *ledger) compactSafe() map[string][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	snapshot := make(map[string][]byte, len(l.pending))
	for id, body := range l.pending {
		snapshot[id] = body
	}
	l.pending = map[string][]byte{}
	return snapshot
}

// Bad: locking the WRONG mutex does not guard mu-protected state.
func (l *ledger) wrongLock(id string) []byte {
	l.statsMu.RLock()
	defer l.statsMu.RUnlock()
	return l.pending[id] // want `pending is guarded by mu`
}

// Allowed: an annotated single-goroutine accessor documents why the
// lock is unnecessary.
func (l *ledger) bootstrap() int {
	//lint:allow lockguard constructor-time access before the ledger is shared
	return len(l.results)
}
