// Package clean is the lockguard negative fixture: every guarded field
// access holds its guard (directly, via defer, or behind a Locked
// suffix), so nothing is flagged.
package clean

import "sync"

type store struct {
	mu sync.RWMutex
	// guarded by mu
	items map[string][]byte

	statsMu sync.Mutex
	hits    int // guarded by statsMu
}

func (s *store) put(id string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[id] = body
}

func (s *store) get(id string) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[id]
}

func (s *store) bump() {
	s.statsMu.Lock()
	s.hits++
	s.statsMu.Unlock()
}

// sizeLocked promises the caller holds mu.
func (s *store) sizeLocked() int {
	return len(s.items)
}
