// Package retry is the retrypolicy scope fixture: the exempt package
// that implements the policy is allowed to sleep in loops and build
// clients, so nothing here may be flagged.
package retry

import (
	"net/http"
	"time"
)

func backoff(do func() error) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = do(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i) * time.Millisecond)
	}
	return err
}

func client() *http.Client { return &http.Client{} }
