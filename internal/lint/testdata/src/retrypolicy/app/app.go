// Package app is the retrypolicy fixture: a non-exempt package that
// hand-rolls retry loops and HTTP clients.
package app

import (
	"net/http"
	"time"
)

// Bad: the canonical hand-rolled retry loop.
func fetchRetry(do func() error) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = do(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond) // want `time.Sleep inside a loop is a hand-rolled retry/poll loop`
	}
	return err
}

// Bad: polling with sleep in a range loop.
func pollAll(checks []func() bool) {
	for _, check := range checks {
		for !check() {
			time.Sleep(time.Second) // want `time.Sleep inside a loop is a hand-rolled retry/poll loop`
		}
	}
}

// Fine: a single delay outside any loop is not a retry loop.
func settle() {
	time.Sleep(10 * time.Millisecond)
}

// Bad: raw client construction bypasses the faults/retry decoration
// point.
func rawClient() *http.Client {
	return &http.Client{Timeout: time.Second} // want `raw http.Client construction`
}

// Allowed: a documented exception.
func chaosClient() *http.Client {
	//lint:allow retrypolicy fault-injection transport must be constructed raw
	return &http.Client{}
}
