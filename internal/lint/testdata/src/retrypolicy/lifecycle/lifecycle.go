// Package lifecycle is a retrypolicy fixture: the lifecycle package is
// NOT in the exempt list, so its re-scan scheduler and shadow pacing
// must go through internal/retry's Policy/Do — a hand-rolled
// sleep-poll loop is exactly the shape the analyzer exists to catch.
package lifecycle

import "time"

// Bad: the re-scan scheduler polling for due work with a bare sleep
// loop instead of retry.Do with a fixed-interval Policy.
func pollRescans(due func() bool) {
	for !due() {
		time.Sleep(250 * time.Millisecond) // want `time.Sleep inside a loop is a hand-rolled retry/poll loop`
	}
}

// Bad: pacing the shadow-evaluation drain by sleeping in a loop.
func drainShadow(tick func() (done bool)) {
	for {
		if tick() {
			return
		}
		time.Sleep(time.Second) // want `time.Sleep inside a loop is a hand-rolled retry/poll loop`
	}
}

// Fine: a one-shot settle delay outside any loop.
func settle() {
	time.Sleep(10 * time.Millisecond)
}
