// Package serve is the journalorder negative fixture: an in-scope
// package whose handlers journal before any response bytes leave, or
// never journal at all (pure rejection paths).
package serve

import "net/http"

type ledger struct{}

func (l *ledger) Accept(batch []byte) error { return nil }

// handleSubmit journals first, then acknowledges.
func handleSubmit(l *ledger, w http.ResponseWriter, r *http.Request) {
	batch := []byte("batch")
	if err := l.Accept(batch); err != nil {
		http.Error(w, "journal failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	w.Write([]byte("ok"))
}

// handleReject never journals: responding early on a malformed request
// is not a durability path.
func handleReject(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusBadRequest)
	w.Write([]byte("malformed"))
}
