// Package serve is the journalorder fixture: response bytes (or
// verdict channel sends) must never precede the batch's journal accept
// in the same function.
package serve

import "net/http"

type VerdictRecord struct {
	File    string
	Verdict string
}

type ledger struct{}

func (l *ledger) Accept(id string, body []byte) error   { return nil }
func (l *ledger) AppendAsync(kind byte, b []byte) error { return nil }
func (l *ledger) ImportChunk(data []byte) error         { return nil }

// Good: journal first, respond second — the durable handshake.
func handleGood(w http.ResponseWriter, l *ledger, id string, body []byte) {
	if err := l.Accept(id, body); err != nil {
		http.Error(w, "journal unavailable", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// Bad: the 200 escapes before the batch is durable; a crash between
// the two acknowledges a batch the ledger never heard of.
func handleBad(w http.ResponseWriter, l *ledger, id string, body []byte) {
	w.WriteHeader(http.StatusOK) // want `http response WriteHeader happens before the batch's journal accept`
	w.Write(body)                // want `http response Write happens before the batch's journal accept`
	l.Accept(id, body)
}

// Bad: a verdict escaping on a channel before the journal accept is
// the same lost-batch window in the worker-pool shape.
func pipelineBad(out chan VerdictRecord, l *ledger, id string, body []byte) {
	out <- VerdictRecord{File: id} // want `verdict channel send happens before the batch's journal accept`
	l.AppendAsync(1, body)
}

// Good: a handoff import journals the chunk before the ack escapes —
// the ack is a transfer of authority the source acts on.
func handleImportGood(w http.ResponseWriter, l *ledger, chunk []byte) {
	if err := l.ImportChunk(chunk); err != nil {
		http.Error(w, "import failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// Bad: the import ack escapes before the chunk is journaled; the
// source deletes its copy and a crash here loses the range entirely.
func handleImportBad(w http.ResponseWriter, l *ledger, chunk []byte) {
	w.WriteHeader(http.StatusOK) // want `http response WriteHeader happens before the batch's journal accept`
	l.ImportChunk(chunk)
}

// Fine: a pure responder never journals, so ordering does not apply
// (rejection paths respond without accepting).
func reject(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest)
	w.Write([]byte("malformed"))
}

// Fine: a pure journaling helper writes no response.
func persist(l *ledger, id string, body []byte) error {
	return l.Accept(id, body)
}
