// Package depjob is the dependency side of the ctxflow fixture: Fetch
// roots a fresh context and accepts none, a fact the analyzing package
// learns only through the serialized summaries.
package depjob

import (
	"context"
	"time"
)

// Fetch does remote work on a self-made context — callers on a request
// path lose their deadline here.
func Fetch(key string) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = ctx
	_ = key
	return nil
}
