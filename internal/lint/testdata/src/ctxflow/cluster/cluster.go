// Package cluster is the ctxflow negative fixture: an in-scope package
// whose request paths propagate the incoming context, and whose
// startup wiring (no context parameter) may root freely.
package cluster

import (
	"context"
	"net/http"
	"time"
)

// Forward derives everything from the request's context.
func Forward(w http.ResponseWriter, r *http.Request) {
	handle(r.Context())
	w.WriteHeader(http.StatusNoContent)
}

func handle(ctx context.Context) {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-sub.Done()
}

// Boot is startup wiring: no context parameter, so rooting here is the
// process's own lifetime decision, not a dropped deadline.
func Boot() context.Context {
	return context.Background()
}
