// Package serve is the ctxflow positive fixture: its base name puts it
// in the enforced scope, and every function here carries a context or
// request, so rooting or dropping contexts is flagged.
package serve

import (
	"context"
	"net/http"

	"repro/internal/lint/testdata/src/ctxflow/depjob"
)

// Handle roots a fresh context despite holding the request, then calls
// a dependency that severs the deadline on its own (known only through
// facts).
func Handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `severs the caller's deadline`
	_ = ctx
	if err := depjob.Fetch("key"); err != nil { // want `drops the request context`
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

// Relay launders the deadline through context.TODO.
func Relay(ctx context.Context) {
	work(context.TODO()) // want `severs the caller's deadline`
}

// Guarded uses the sanctioned nil fallback, then propagates.
func Guarded(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	work(ctx)
}

func work(ctx context.Context) {
	<-ctx.Done()
}
