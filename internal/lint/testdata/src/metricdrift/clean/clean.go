// Package clean is the metricdrift negative fixture: snake_case,
// uniquely spelled, documented names — including histogram series that
// resolve to their documented base.
package clean

import (
	"fmt"
	"io"
)

// WriteMetrics renders a conforming exposition page.
func WriteMetrics(w io.Writer, n int) {
	fmt.Fprintf(w, "longtail_requests_total %d\n", n)
	fmt.Fprintf(w, "longtail_batches_total %d\n", n)
	fmt.Fprintf(w, "longtail_latency_seconds_sum %d\n", n)
	fmt.Fprintf(w, "longtail_latency_seconds_count %d\n", n)
}
