// Package app is the metricdrift positive fixture: one name per
// failure class, plus healthy names that prove the severity ordering
// stops at the first applicable check.
package app

import (
	"fmt"
	"io"
)

// WriteMetrics renders an exposition page.
func WriteMetrics(w io.Writer, n int) {
	fmt.Fprintf(w, "longtail_requests_total %d\n", n)
	fmt.Fprintf(w, "longtail_latency_seconds_bucket{le=\"0.1\"} %d\n", n)
	fmt.Fprintf(w, "longtail_Batches_Total %d\n", n)  // want `not snake_case`
	fmt.Fprintf(w, "longtail_request_stotal %d\n", n) // want `conflicts with spelling`
	fmt.Fprintf(w, "longtail_orphan_gauge %d\n", n)   // want `not documented`
}
