// Package synth is a determinism-analyzer fixture: its package base
// name places it inside the deterministic core, so wall-clock reads,
// global PRNG use and map-ordered serialization must all be flagged.
package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Timestamps must come from the trace clock, not the wall clock.
func stamp() int64 {
	return time.Now().Unix() // want `time.Now breaks seed-determinism`
}

// The global PRNG shares process state; a seeded *rand.Rand is fine.
func pick(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn uses shared process state`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle uses shared process state`
}

// Seeded sources are the sanctioned pattern and must not be flagged.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Serializing while ranging over a map emits bytes in randomized order.
func emitUnsorted(w *strings.Builder, m map[string]int) {
	for k, v := range m { // want `ranging over a map while calling WriteString`
		w.WriteString(fmt.Sprintf("%s=%d\n", k, v))
	}
}

// Collect-sort-emit is the sanctioned pattern and must not be flagged.
func emitSorted(w *strings.Builder, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// An explicit exemption silences the analyzer and documents why.
func wallClockAllowed() int64 {
	//lint:allow determinism the daemon's metrics timestamp is intentionally wall-clock
	return time.Now().Unix()
}
