// Package lifecycle is a determinism-analyzer fixture: the
// champion/challenger lifecycle is inside the deterministic core —
// its clocks are injected by callers (the harvester's Advance, the
// manager's paced Tick) — so wall-clock reads must be flagged.
package lifecycle

import (
	"math/rand"
	"time"
)

// Bad: a re-scan scheduler that stamps due times off the wall clock
// diverges between two runs with the same seed.
func scheduleRescan(delay time.Duration) time.Time {
	return time.Now().Add(delay) // want `time.Now breaks seed-determinism`
}

// Bad: sampling shadow traffic through the global PRNG shares mutable
// process state across evaluators.
func sampleBatch(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn uses shared process state`
}

// Fine: the sanctioned pattern — the caller owns the clock and passes
// `now` in, so the harvester advances only when the test (or daemon)
// says so.
func dueRescans(now time.Time, due []time.Time) int {
	ready := 0
	for _, d := range due {
		if !d.After(now) {
			ready++
		}
	}
	return ready
}

// Fine: a seeded source threaded explicitly stays reproducible.
func seededSample(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
