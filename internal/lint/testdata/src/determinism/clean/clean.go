// Package clean is the determinism scope-check fixture: its base name
// is not in -determinism.pkgs, so the same wall-clock and global-PRNG
// patterns that light up the synth fixture must produce no findings
// here (the daemon and serving layer legitimately read the clock).
package clean

import (
	"math/rand"
	"time"
)

func stamp() int64 { return time.Now().Unix() }

func pick(n int) int { return rand.Intn(n) }
