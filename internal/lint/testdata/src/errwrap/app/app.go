// Package app is the errwrap fixture: %v-wrapped errors and == sentinel
// comparisons.
package app

import (
	"errors"
	"fmt"
	"io"
)

var ErrOverloaded = errors.New("queue full")

// Bad: %v flattens the chain — retry.Do can no longer classify the
// cause with errors.Is.
func wrapV(err error) error {
	return fmt.Errorf("accept failed: %v", err) // want `error formatted with %v loses the error chain`
}

// Bad: %s is the same flattening with different clothes.
func wrapS(err error) error {
	return fmt.Errorf("accept %s failed: %s", "x", err) // want `error formatted with %s loses the error chain`
}

// Good: %w keeps the chain inspectable.
func wrapW(err error) error {
	return fmt.Errorf("accept failed: %w", err)
}

// Good: non-error arguments may use any verb.
func describe(n int, name string) error {
	return fmt.Errorf("bad shard %d (%s)", n, name)
}

// Bad: == stops matching as soon as anyone wraps the sentinel.
func isOverloadedEq(err error) bool {
	return err == ErrOverloaded // want `comparing an error to sentinel ErrOverloaded with ==`
}

// Bad: != has the same problem, and io.EOF is still a sentinel.
func isNotEOF(err error) bool {
	return err != io.EOF // want `comparing an error to sentinel io.EOF with !=`
}

// Good: errors.Is sees through wrapping.
func isOverloaded(err error) bool {
	return errors.Is(err, ErrOverloaded)
}

// Good: nil checks are not sentinel comparisons.
func failed(err error) bool {
	return err != nil
}
