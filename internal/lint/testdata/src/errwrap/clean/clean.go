// Package clean is the errwrap negative fixture: errors wrap with %w
// and sentinels compare through errors.Is, so the chain survives.
package clean

import (
	"errors"
	"fmt"
	"io"
)

var ErrMissing = errors.New("missing")

func wrap(err error) error {
	return fmt.Errorf("loading manifest: %w", err)
}

func classify(err error) string {
	switch {
	case err == nil: // nil comparisons are fine
		return "ok"
	case errors.Is(err, ErrMissing):
		return "missing"
	case errors.Is(err, io.EOF):
		return "eof"
	}
	return fmt.Sprintf("failed with code %d", 7) // non-error %d is fine
}
