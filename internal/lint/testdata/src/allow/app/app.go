// Package app is the suppression-directive fixture: //lint:allow must
// silence the named analyzer on its line (or the line below, or its
// whole declaration from a doc comment), and a directive without a
// reason is itself a finding.
package app

import (
	"errors"
	"fmt"
)

var ErrBusy = errors.New("busy")

// Suppressed on the same line.
func sameLine(err error) bool {
	return err == ErrBusy //lint:allow errwrap this call site predates wrapping and is covered by tests
}

// Suppressed from the line above.
func lineAbove(err error) error {
	//lint:allow errwrap the flattened message is part of the wire format
	return fmt.Errorf("busy: %v", err)
}

//lint:allow errwrap the whole comparison table below is deliberate
func declWide(err error) bool {
	if err == ErrBusy {
		return true
	}
	return err != ErrBusy
}

// A directive that names no reason is rejected, and does not suppress.
func missingReason(err error) bool {
	return err == ErrBusy //lint:allow errwrap // want `comparing an error to sentinel ErrBusy` // want `lint:allow directive must name an analyzer and give a reason`
}

// Naming a different analyzer does not suppress this one.
func wrongAnalyzer(err error) bool {
	return err == ErrBusy //lint:allow determinism not about clocks at all // want `comparing an error to sentinel ErrBusy`
}
