// Package app is the atomicswap fixture: the hot-swapped rule-set
// pointer (and every other sync/atomic field) may only be the receiver
// of its own methods.
package app

import "sync/atomic"

type rules struct{ gen uint64 }

type engine struct {
	rules    atomic.Pointer[rules]
	inflight atomic.Int64
}

// Good: method-receiver uses.
func (e *engine) swap(next *rules) *rules {
	e.inflight.Add(1)
	old := e.rules.Swap(next)
	e.inflight.Add(-1)
	return old
}

// Good: loads on the hot path.
func (e *engine) current() *rules {
	return e.rules.Load()
}

// Bad: copying the atomic forks its state — later Stores through e are
// invisible to readers of the copy.
func (e *engine) fork() *rules {
	snapshot := e.rules // want `atomic.Pointer field rules may only be the receiver of its own methods`
	return snapshot.Load()
}

// Bad: handing out the address invites non-atomic access patterns the
// engine can no longer see.
func (e *engine) leak() *atomic.Int64 {
	return &e.inflight // want `atomic.Int64 field inflight may only be the receiver of its own methods`
}
