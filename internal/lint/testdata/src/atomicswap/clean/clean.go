// Package clean is the atomicswap negative fixture: every atomic field
// is only ever the receiver of its own methods.
package clean

import "sync/atomic"

type rules struct{ gen int }

type engine struct {
	current atomic.Pointer[rules]
	served  atomic.Uint64
}

func (e *engine) swap(next *rules) *rules {
	return e.current.Swap(next)
}

func (e *engine) observe() (int, uint64) {
	r := e.current.Load()
	e.served.Add(1)
	return r.gen, e.served.Load()
}
