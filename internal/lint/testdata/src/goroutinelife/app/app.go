// Package app is the goroutinelife positive fixture: spawned
// goroutines with no termination path, as literals and as named
// functions resolved through the facts.
package app

// Leak spawns a literal that spins forever with no exit or signal.
func Leak() {
	go func() { // want `for \{\} loop with no exit`
		n := 0
		for {
			n++
		}
	}()
}

// spin is the named equivalent; its summary travels via facts.
func spin() {
	for {
	}
}

// SpawnSpin spawns the spinner.
func SpawnSpin() {
	go spin() // want `for \{\} loop with no exit`
}

// fire does bounded work but exhibits no termination signal — nothing
// ties its lifetime to a WaitGroup, channel, or context.
func fire() {
	println("fired")
}

// SpawnFire spawns it without any lifetime contract.
func SpawnFire() {
	go fire() // want `no provable termination path`
}
