// Package clean is the goroutinelife negative fixture: each sanctioned
// termination path in turn.
package clean

import (
	"context"
	"sync"
)

// WaitGrouped signals completion through wg.Done.
func WaitGrouped() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("work")
	}()
	wg.Wait()
}

func run(ctx context.Context) {
	<-ctx.Done()
}

// ContextBound hands the goroutine a context at the spawn site.
func ContextBound(ctx context.Context) {
	go run(ctx)
}

// ChannelSignaled selects on a quit channel.
func ChannelSignaled(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
}

// notify signals through a send; reached one call deep from the spawn.
func notify(done chan<- struct{}) {
	done <- struct{}{}
}

// Indirect proves the depth-bounded reachability: the signal is in the
// callee, not the literal.
func Indirect(done chan struct{}) {
	go func() {
		notify(done)
	}()
}
