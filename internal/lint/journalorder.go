package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/lintkit"
)

// JournalOrder enforces the serving layer's durability handshake: a
// batch is journaled (Ledger.Accept/AcceptWire, or a raw journal
// Append) BEFORE any response bytes for it leave the server. If a
// response could escape first, a crash between the two would leave the
// client believing in a batch the ledger never heard of — exactly the
// lost-update the write-ahead journal exists to prevent.
//
// The check is per-function and lexical: in any function (default
// scope: package base "serve") that both journals a batch and writes a
// response — an http.ResponseWriter Write/WriteHeader, or a send into
// a channel of verdict records — the first response write must come
// after the first journal call. Functions that only do one of the two
// are ignored, so pure helpers and pure handlers don't need
// annotations; paths that intentionally respond before journaling
// (e.g. rejecting a malformed request) are fine because rejection
// paths don't call Accept at all.
//
// The sharded journal and its group-commit ack queue do not weaken
// the invariant, and the analyzer needs no special case for them:
// Accept still appends to the batch's shard before returning, and the
// ack queue only delays the response further (the handler blocks on
// the shard's next fsync before writing bytes). Sharded entry points
// (AppendFunc/AppendAsyncFunc, which draw the global sequence number
// inside the shard's write lock) count as journal calls exactly like
// the flat Append/AppendAsync pair.
var JournalOrder = &lintkit.Analyzer{
	Name: "journalorder",
	Doc:  "no response write may precede the batch's journal accept in the same function",
	Flags: []*lintkit.Flag{
		{Name: "journalorder.pkgs", Usage: "comma-separated package base names under the journal-before-response invariant", Value: "serve"},
	},
	Run: runJournalOrder,
}

// journalCallNames are the durable-accept entry points. Import and
// ImportChunk cover the handoff plane: acking a received chunk is a
// transfer of authority, so the chunk's records must hit the journal
// before the ack escapes.
var journalCallNames = map[string]bool{
	"Accept": true, "AcceptWire": true, "Append": true, "AppendAsync": true,
	"AppendFunc": true, "AppendAsyncFunc": true,
	"Import": true, "ImportChunk": true,
}

func runJournalOrder(pass *lintkit.Pass) error {
	if !pkgInScope(pass.Path, pass.Analyzer.Lookup("journalorder.pkgs").Value) {
		return nil
	}
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkJournalOrder(pass, fd)
		}
	}
	return nil
}

func checkJournalOrder(pass *lintkit.Pass, fd *ast.FuncDecl) {
	var firstJournal token.Pos
	type respWrite struct {
		pos  token.Pos
		what string
	}
	var writes []respWrite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if journalCallNames[name] {
				if firstJournal == token.NoPos || n.Pos() < firstJournal {
					firstJournal = n.Pos()
				}
				return true
			}
			if (name == "Write" || name == "WriteHeader" || name == "WriteString") && isResponseWriter(pass, sel.X) {
				writes = append(writes, respWrite{pos: n.Pos(), what: "http response " + name})
			}
		case *ast.SendStmt:
			if isVerdictChannel(pass, n.Chan) {
				writes = append(writes, respWrite{pos: n.Pos(), what: "verdict channel send"})
			}
		}
		return true
	})
	if firstJournal == token.NoPos {
		return // function never journals; not a durability path
	}
	for _, w := range writes {
		if w.pos < firstJournal {
			pass.Reportf(w.pos, "%s happens before the batch's journal accept in %s; a crash between them loses an acknowledged batch — journal first", w.what, fd.Name.Name)
		}
	}
}

// isResponseWriter reports whether expr's type implements
// net/http.ResponseWriter (detected structurally: Header/Write/
// WriteHeader methods), so wrappers and the interface itself both
// count.
func isResponseWriter(pass *lintkit.Pass, expr ast.Expr) bool {
	t := pass.TypeOf(expr)
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter" {
		return true
	}
	return hasMethod(t, "WriteHeader") && hasMethod(t, "Header") && hasMethod(t, "Write")
}

// isVerdictChannel reports whether expr is a channel whose element type
// names a verdict record.
func isVerdictChannel(pass *lintkit.Pass, expr ast.Expr) bool {
	t := pass.TypeOf(expr)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	elem := ch.Elem()
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "VerdictRecord" || name == "Verdict"
}

// hasMethod reports whether t (or *t) has a method with the given name,
// either declared or via an interface's method set.
func hasMethod(t types.Type, name string) bool {
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
		return false
	}
	recv := t
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		recv = types.NewPointer(t)
	}
	ms := types.NewMethodSet(recv)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
