package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/lintkit"
)

// ErrWrap enforces Go 1.13+ error semantics, which the pipeline's
// degraded-mode handling depends on: retry.Do classifies failures with
// errors.Is/errors.As, so an error formatted away with %v (instead of
// wrapped with %w) silently breaks retry classification, and a
// sentinel compared with == stops matching the moment anyone adds a
// wrapping layer. Two checks, applied to every package including
// tests:
//
//   - fmt.Errorf("...%v...", err) where the argument is an error —
//     use %w so the chain stays inspectable;
//   - err == ErrSentinel / err != ErrSentinel where the sentinel is a
//     package-level Err* variable (or io.EOF) — use errors.Is, which
//     sees through wrapping. Comparisons with nil are fine.
var ErrWrap = &lintkit.Analyzer{
	Name: "errwrap",
	Doc:  "wrap errors with %w and compare sentinels with errors.Is",
	Run:  runErrWrap,
}

func runErrWrap(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

func checkErrorfWrap(pass *lintkit.Pass, call *ast.CallExpr) {
	id := calleeIdent(call)
	if id == nil || qualifiedName(pass.Info.Uses[id]) != "fmt.Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		if isErrorType(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error formatted with %%%c loses the error chain; use %%w so errors.Is/As keep working through the wrap", verb)
		}
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order. Width/precision stars consume an argument slot too, recorded
// as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision (a '*' consumes an arg slot)
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

func checkSentinelCompare(pass *lintkit.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if !isErrorType(pass.TypeOf(bin.X)) && !isErrorType(pass.TypeOf(bin.Y)) {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if name, ok := sentinelName(pass, side); ok {
			op := "errors.Is(err, " + name + ")"
			if bin.Op == token.NEQ {
				op = "!" + op
			}
			pass.Reportf(bin.Pos(), "comparing an error to sentinel %s with %s breaks once the error is wrapped; use %s", name, bin.Op, op)
			return
		}
	}
}

// sentinelName reports whether expr denotes a package-level error
// variable following the ErrFoo convention (or io.EOF), returning its
// display name.
func sentinelName(pass *lintkit.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	display := ""
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
		display = e.Name
	case *ast.SelectorExpr:
		id = e.Sel
		if pkg, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			display = pkg.Name + "." + e.Sel.Name
		} else {
			display = e.Sel.Name
		}
	default:
		return "", false
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || !isErrorType(obj.Type()) {
		return "", false
	}
	// Package-level only: local error variables are not sentinels.
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if strings.HasPrefix(obj.Name(), "Err") || strings.HasPrefix(obj.Name(), "err") || obj.Name() == "EOF" {
		return display, true
	}
	return "", false
}
