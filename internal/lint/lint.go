// Package lint is longtailvet: the project-specific static-analysis
// suite that mechanically enforces the conventions the reproduction's
// correctness rests on. The paper's Table I–IX numbers only reproduce
// if every pipeline stage is byte-deterministic from a seed, and the
// serving layer's exactly-once contract only holds if journal appends,
// lock-guarded state and the hot-swapped rule-set pointer are touched
// the way their comments promise. Each analyzer encodes one such
// invariant so `make verify` catches violations before review does:
//
//	determinism  — no wall clock, global PRNG, or unsorted map
//	              iteration feeding output inside the deterministic core
//	lockguard    — fields annotated `// guarded by <mu>` are only
//	              accessed with the lock held
//	journalorder — no response bytes leave before the batch's journal
//	              accept on the same path
//	retrypolicy  — no hand-rolled sleep-retry loops or raw http.Client
//	              construction outside the retry/serve layers
//	errwrap      — errors wrap with %w and compare with errors.Is
//	atomicswap   — sync/atomic fields are only touched via their methods
//
// Four analyzers are interprocedural, built on lintkit's cross-package
// facts (per-package summaries serialized alongside export data and
// imported transitively — see lintkit/facts.go):
//
//	lockorder    — the global mutex-acquisition graph is acyclic; no
//	              double locks or lock-value copies
//	goroutinelife — every go statement has a provable termination path
//	              (WaitGroup.Done, channel signal, or context)
//	ctxflow      — request paths propagate the caller's context; no
//	              context.Background/TODO or deadline-dropping callees
//	metricdrift  — longtail_* metric names are snake_case, uniquely
//	              spelled tree-wide, and documented
//
// Intentional exceptions carry `//lint:allow <analyzer> <reason>`
// (reason mandatory — see lintkit). The suite runs standalone
// (`longtailvet ./...`) and as `go vet -vettool=$(longtailvet)`.
package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/lintkit"
)

// Suite returns the full analyzer set in reporting order.
func Suite() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		Determinism,
		Lockguard,
		Lockorder,
		Goroutinelife,
		Ctxflow,
		Metricdrift,
		JournalOrder,
		RetryPolicy,
		ErrWrap,
		AtomicSwap,
	}
}

// pkgInScope reports whether the package's path base is one of the
// comma-separated base names in list.
func pkgInScope(path, list string) bool {
	base := lintkit.PathBase(path)
	for _, want := range strings.Split(list, ",") {
		if strings.TrimSpace(want) == base {
			return true
		}
	}
	return false
}

// inspectStack walks the tree rooted at n, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// fn returning false prunes the subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still push/pop symmetrically: returning false means the
			// walker will not descend, so pop immediately.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// calleeObjOf returns the called function's use identifier for a call
// expression of the form pkg.F(...) or x.M(...), or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}
