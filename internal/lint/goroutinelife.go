package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/lintkit"
)

// Goroutinelife demands a provable termination path for every `go`
// statement in production code. A goroutine terminates provably when
// its body (or a function it statically calls, within a small depth)
// exhibits a completion signal: a WaitGroup.Done, a channel operation
// or select (close-signaled shutdown), or any use of a context —
// including simply receiving one as an argument at the spawn site,
// which delegates lifetime to the caller's cancellation.
//
// Two findings, both reported at the `go` statement:
//
//   - the spawned function runs a `for {}` loop with no exit statement
//     and no signal inside — it can never terminate;
//   - the spawned function (transitively) shows no completion signal
//     at all — nothing bounds its lifetime, so a restart/shutdown
//     leaks it.
//
// Unresolvable spawns (interface methods, external packages) are
// skipped rather than guessed at. Test files are exempt: test
// goroutines die with the process.
var Goroutinelife = &lintkit.Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement needs a provable termination path (WaitGroup.Done, channel/select signal, or context)",
	Run:  runGoroutinelife,
}

func runGoroutinelife(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, gs)
			}
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *lintkit.Pass, gs *ast.GoStmt) {
	call := gs.Call
	// A context handed to the goroutine at the spawn site is the
	// canonical lifetime contract; nothing further to prove.
	for _, arg := range call.Args {
		if typeIsContext(pass.TypeOf(arg)) {
			return
		}
	}
	var ff *lintkit.FuncFact
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		ff = lintkit.SummarizeFuncLit(pass.Path, pass.Fset, pass.Info, fun)
	default:
		var callee *types.Func
		switch f := fun.(type) {
		case *ast.Ident:
			callee, _ = pass.Info.Uses[f].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = pass.Info.Uses[f.Sel].(*types.Func)
		}
		key := lintkit.CanonFuncName(callee)
		if key == "" || pass.Facts == nil {
			return // interface dispatch or untyped: don't guess
		}
		ff = pass.Facts.Func(key)
	}
	if ff == nil {
		return // external or unsummarized: facts make no claim
	}
	if ff.LoopNoExit {
		pass.Reportf(gs.Pos(),
			"goroutine runs a for {} loop with no exit and no termination signal (loop at %s:%d) — it can never stop",
			lintkit.PathBase(ff.LoopFile), ff.LoopLine)
		return
	}
	if !signalsReachable(pass.Facts, ff, 3, make(map[*lintkit.FuncFact]bool)) {
		pass.Reportf(gs.Pos(),
			"goroutine has no provable termination path: no WaitGroup.Done, channel operation, or context use in the spawned function or its callees")
	}
}

// signalsReachable reports whether ff or any function it statically
// reaches within depth shows a completion signal.
func signalsReachable(facts *lintkit.FactSet, ff *lintkit.FuncFact, depth int, seen map[*lintkit.FuncFact]bool) bool {
	if ff == nil || seen[ff] {
		return false
	}
	seen[ff] = true
	if ff.Signals {
		return true
	}
	if depth == 0 || facts == nil {
		return false
	}
	for _, c := range ff.Calls {
		if signalsReachable(facts, facts.Func(c), depth-1, seen) {
			return true
		}
	}
	for _, ca := range ff.ClosureArgs {
		if signalsReachable(facts, facts.Func(ca.Lit), depth-1, seen) {
			return true
		}
	}
	return false
}

// typeIsContext reports whether t is context.Context.
func typeIsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
