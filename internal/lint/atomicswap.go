package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/lintkit"
)

// AtomicSwap protects the hot-swap discipline of the serving layer: the
// engine's rule-set generation lives behind an atomic.Pointer so that
// workers load exactly one generation per event with no lock on the hot
// path, and /admin/reload swaps it with zero downtime. That only holds
// if every touch of a sync/atomic-typed field goes through the atomic's
// method set. The analyzer flags any other use of such a field — copying
// it into a variable, passing it by value, ranging over it, taking its
// address to hand elsewhere — each of which either tears the value or
// (for a copied atomic) silently forks the state so later Stores are
// invisible to readers of the copy.
//
// go vet's copylocks catches by-value copies of types containing a
// noCopy; this analyzer is stricter: inside this repo an atomic field is
// only ever the immediate receiver of Load/Store/Swap/Add/
// CompareAndSwap.
var AtomicSwap = &lintkit.Analyzer{
	Name: "atomicswap",
	Doc:  "sync/atomic struct fields may only be used as the receiver of their own methods",
	Run:  runAtomicSwap,
}

func runAtomicSwap(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() || !isSyncAtomicType(obj.Type()) {
				return true
			}
			if isMethodReceiverUse(stack) {
				return true
			}
			pass.Reportf(sel.Pos(), "%s field %s may only be the receiver of its own methods (Load/Store/Swap/CompareAndSwap); copying or aliasing it forks the atomic state", atomicTypeName(obj.Type()), sel.Sel.Name)
			return true
		})
	}
	return nil
}

// isSyncAtomicType reports whether t is a named type from sync/atomic.
func isSyncAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func atomicTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return "sync/atomic"
	}
	return "atomic." + named.Obj().Name()
}

// isMethodReceiverUse reports whether the innermost enclosing nodes
// form `<field>.<Method>(...)` — i.e. the selector's parent is another
// selector (the method lookup) whose parent is the call.
func isMethodReceiverUse(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	return call.Fun == parent
}
