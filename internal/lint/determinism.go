package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/lintkit"
)

// Determinism enforces the reproduction's core property: every stage of
// the offline pipeline is a pure function of its seed. Inside the
// deterministic core (synth, export, faults, experiments, the
// classifier/rule-induction packages classify and part, and the
// champion/challenger lifecycle — whose clocks are injected by callers
// — by default) it flags:
//
//   - time.Now — wall-clock reads make two runs with the same seed
//     diverge; derive timestamps from the synthetic trace clock.
//   - the global math/rand functions (rand.Intn, rand.Shuffle, ...) and
//     rand.Seed — they share mutable process-global state; thread a
//     seeded *rand.Rand instead.
//   - ranging over a map while writing output inside the loop body —
//     Go randomizes map iteration order, so serialized bytes differ
//     run-to-run; collect the keys, sort, then emit.
//
// The daemon and serving layer legitimately read the real clock, which
// is why the scope is package-based and configurable: -determinism.pkgs
// lists the package base names under the invariant, and
// -determinism.allow lists fully qualified functions (e.g. "time.Now")
// exempted everywhere — the config-driven escape for a deliberately
// wall-clock-aware component.
var Determinism = &lintkit.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global PRNG and unsorted map-iteration output in the deterministic pipeline core",
	Flags: []*lintkit.Flag{
		{Name: "determinism.pkgs", Usage: "comma-separated package base names under the determinism invariant", Value: "synth,export,faults,experiments,classify,part,lifecycle"},
		{Name: "determinism.allow", Usage: "comma-separated fully qualified functions (pkgpath.Func) exempt from the determinism check", Value: ""},
	},
	Run: runDeterminism,
}

// randConstructors are the math/rand package-level functions that do
// NOT touch the global source and are therefore fine.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// writerCallNames are method/function names that emit bytes; a map
// range whose body calls one of these is serializing in map order.
var writerCallNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runDeterminism(pass *lintkit.Pass) error {
	a := pass.Analyzer
	if !pkgInScope(pass.Path, a.Lookup("determinism.pkgs").Value) {
		return nil
	}
	allowed := make(map[string]bool)
	for _, fn := range strings.Split(a.Lookup("determinism.allow").Value, ",") {
		if fn = strings.TrimSpace(fn); fn != "" {
			allowed[fn] = true
		}
	}
	for _, f := range pass.Files {
		if lintkit.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n, allowed)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
	return nil
}

// qualifiedName returns "pkgpath.Func" for a package-level function
// object, or "".
func qualifiedName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "" // methods never hit the global-state checks below
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func checkDeterministicCall(pass *lintkit.Pass, call *ast.CallExpr, allowed map[string]bool) {
	id := calleeIdent(call)
	if id == nil {
		return
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	qn := qualifiedName(obj)
	if qn == "" || allowed[qn] {
		return
	}
	switch {
	case qn == "time.Now":
		pass.Reportf(call.Pos(), "time.Now breaks seed-determinism in package %s; derive timestamps from the trace clock (or exempt via -determinism.allow)", pass.Pkg.Name())
	case strings.HasPrefix(qn, "math/rand.") || strings.HasPrefix(qn, "math/rand/v2."):
		name := qn[strings.LastIndexByte(qn, '.')+1:]
		if !randConstructors[name] {
			pass.Reportf(call.Pos(), "global math/rand.%s uses shared process state and breaks seed-determinism; thread a seeded *rand.Rand", name)
		}
	}
}

// checkMapRangeOutput flags `for k := range m { ... emit ... }` where m
// is a map and the body performs writer-style calls: the emitted byte
// order then depends on Go's randomized map iteration.
func checkMapRangeOutput(pass *lintkit.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id := calleeIdent(call)
		if id == nil || !writerCallNames[id.Name] {
			return true
		}
		reported = true
		pass.Reportf(rng.Pos(), "ranging over a map while calling %s in the loop body serializes in randomized map order; collect keys, sort, then emit", id.Name)
		return false
	})
}
