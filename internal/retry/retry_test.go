package retry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep is the test Sleep hook: never waits, still honours ctx.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	retries := 0
	p := Policy{Sleep: noSleep, OnRetry: func(int, error) { retries++ }}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls = %d retries = %d, want 3 and 2", calls, retries)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	sentinel := errors.New("boom")
	p := Policy{MaxAttempts: 4, Sleep: noSleep}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want wrapped sentinel", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("fatal")
	err := Do(context.Background(), Policy{Sleep: noSleep}, func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !IsPermanent(err) {
		t.Error("returned error lost its permanent marker")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) should be nil")
	}
}

func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: -1, Sleep: noSleep}, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

func TestDoElapsedBudget(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	calls := 0
	p := Policy{
		MaxAttempts: -1,
		MaxElapsed:  10 * time.Second,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			clock = clock.Add(3 * time.Second)
			return ctx.Err()
		},
		Now: now,
	}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Do = %v, want budget exhausted", err)
	}
	// Budget 10s, 3s per sleep: attempts at t=0,3,6,9 then give up at 12.
	if calls != 5 {
		t.Errorf("calls = %d, want 5", calls)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, PerAttemptTimeout: time.Millisecond, Sleep: noSleep}
	err := Do(context.Background(), p, func(ctx context.Context) error {
		<-ctx.Done() // simulate a hung call that only returns on deadline
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want deadline exceeded", err)
	}
}

func TestDoJitterDeterministic(t *testing.T) {
	record := func() []time.Duration {
		var ds []time.Duration
		calls := 0
		p := Policy{
			MaxAttempts:    6,
			InitialBackoff: 100 * time.Millisecond,
			JitterSeed:     42,
			Sleep: func(ctx context.Context, d time.Duration) error {
				ds = append(ds, d)
				return ctx.Err()
			},
		}
		_ = Do(context.Background(), p, func(context.Context) error {
			calls++
			return errors.New("transient")
		})
		return ds
	}
	a, b := record(), record()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sleep counts = %d, %d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("jitter draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDoBackoffCapped(t *testing.T) {
	var ds []time.Duration
	p := Policy{
		MaxAttempts:    10,
		InitialBackoff: time.Second,
		MaxBackoff:     2 * time.Second,
		JitterSeed:     7,
		Sleep: func(ctx context.Context, d time.Duration) error {
			ds = append(ds, d)
			return ctx.Err()
		},
	}
	_ = Do(context.Background(), p, func(context.Context) error { return errors.New("x") })
	for i, d := range ds {
		if d > 2*time.Second {
			t.Errorf("sleep %d = %v exceeds max backoff", i, d)
		}
	}
}

func TestBreakerValidation(t *testing.T) {
	if _, err := NewBreaker(0, time.Second, nil); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := NewBreaker(3, 0, nil); err == nil {
		t.Error("zero reset accepted")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b, err := NewBreaker(3, 10*time.Second, func() time.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	// Two failures: still closed.
	b.Record(boom)
	b.Record(boom)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	// Third consecutive failure trips it.
	b.Record(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
	// After the reset timeout one probe is admitted (half-open).
	clock = clock.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after reset = %v, want nil", err)
	}
	// Probe fails: straight back to open.
	b.Record(boom)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// Wait again; successful probe closes it.
	clock = clock.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if got := b.Trips(); got != 2 {
		t.Errorf("trips = %d, want 2", got)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, err := NewBreaker(2, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(nil)
	b.Record(boom)
	if b.State() != BreakerClosed {
		t.Error("interleaved success did not reset the failure count")
	}
}

// TestBreakerReset pins the out-of-band recovery path: Reset closes an
// open circuit immediately (no reset-timeout wait), releases a held
// half-open probe slot, and a stale in-flight probe failure recorded
// after Reset cannot re-open the circuit on its own.
func TestBreakerReset(t *testing.T) {
	clock := time.Unix(0, 0)
	b, err := NewBreaker(3, 10*time.Second, func() time.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(boom)
	b.Record(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// No clock advance: Reset closes what Allow would still refuse.
	b.Reset()
	if b.State() != BreakerClosed {
		t.Fatalf("state after Reset = %v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after Reset = %v, want nil", err)
	}
	b.Record(nil)

	// Reset while a half-open probe is in flight: the slot is released,
	// and the probe's late failure starts a fresh count instead of
	// re-opening the circuit.
	b.Record(boom)
	b.Record(boom)
	b.Record(boom)
	clock = clock.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err) // probe slot taken
	}
	b.Reset()
	b.Record(boom) // the stale probe outcome lands after Reset
	if b.State() != BreakerClosed {
		t.Fatalf("state after stale probe failure = %v, want closed (fresh count)", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow = %v, want nil", err)
	}
	b.Record(nil)
}

// TestBreakerHalfOpenSingleProbe pins the half-open admission contract
// under concurrency: when the reset timeout elapses, exactly one of N
// racing Allow callers wins the probe slot; every loser gets ErrOpen.
// Run under -race, this also proves the slot handoff is properly
// synchronized.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var clockNS atomic.Int64
	b, err := NewBreaker(1, time.Second, func() time.Time {
		return time.Unix(0, clockNS.Load())
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	b.Record(boom) // trip it
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
	clockNS.Store(int64(2 * time.Second)) // reset timeout elapsed

	const callers = 64
	var admitted, rejected atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			switch err := b.Allow(); {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrOpen):
				rejected.Add(1)
			default:
				t.Errorf("Allow = %v, want nil or ErrOpen", err)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if got := rejected.Load(); got != callers-1 {
		t.Fatalf("%d callers rejected, want %d", got, callers-1)
	}

	// The winner's Record resolves the probe: a success closes the
	// breaker and lifts the single-slot restriction for everyone.
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	for i := 0; i < 4; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow after close = %v", err)
		}
	}

	// And a failed probe slams it shut again for a full reset period.
	b.Record(boom)
	clockNS.Store(int64(4 * time.Second))
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after second reset = %v", err)
	}
	b.Record(boom)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow after failed probe = %v, want ErrOpen", err)
	}
}

func TestBreakerDo(t *testing.T) {
	clock := time.Unix(0, 0)
	b, err := NewBreaker(1, time.Minute, func() time.Time { return clock })
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Do(func() error { return errors.New("x") }); err == nil {
		t.Fatal("expected failure")
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen", err)
	}
}
