package retry

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the breaker is open and the
// reset timeout has not elapsed yet.
var ErrOpen = errors.New("retry: circuit breaker open")

// BreakerState is the classic three-state breaker automaton.
type BreakerState int

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker is a simple consecutive-failure circuit breaker. After
// Threshold consecutive failures it opens and rejects calls for
// ResetTimeout; the first call allowed afterwards probes half-open, and
// its outcome closes or re-opens the circuit. Half-open admits exactly
// one probe: concurrent Allow callers racing for the slot lose with
// ErrOpen until the winner's Record resolves the probe — without the
// single-slot rule, a thundering herd of callers would all pile onto a
// service that just proved itself unhealthy. The zero value is not
// valid; use NewBreaker.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	openedAt  time.Time
	threshold int
	reset     time.Duration
	now       func() time.Time

	// probing marks the half-open probe slot as taken: one Allow winner
	// holds it until its Record lands. Guarded by mu.
	probing bool

	trips int64 // closed->open transitions, for observability
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and probing again after reset. now replaces time.Now when
// non-nil (tests drive it manually).
func NewBreaker(threshold int, reset time.Duration, now func() time.Time) (*Breaker, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("retry: breaker threshold %d must be >= 1", threshold)
	}
	if reset <= 0 {
		return nil, fmt.Errorf("retry: breaker reset timeout must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, reset: reset, now: now}, nil
}

// Allow reports whether a call may proceed. It returns ErrOpen while the
// circuit is open; when the reset timeout has elapsed it transitions to
// half-open and admits exactly one probe — concurrent callers racing
// for the slot get ErrOpen until the probe's Record resolves it.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	default: // open
		if b.now().Sub(b.openedAt) < b.reset {
			return ErrOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	}
}

// Record feeds one call outcome into the breaker. It also releases the
// half-open probe slot, so every Allow that returned nil must be paired
// with exactly one Record.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.failures = 0
	}
}

// Reset closes the circuit immediately, clearing the failure history
// and any half-open probe slot. It is the out-of-band recovery path:
// a caller with independent evidence the service is healthy again — an
// active health prober that just completed a successful probe — may
// close the circuit without waiting out the reset timeout. An in-flight
// half-open probe whose Record lands after Reset cannot re-open the
// circuit on its own: its failure starts a fresh consecutive count
// against the threshold.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// State returns the current state, resolving an elapsed open period to
// half-open the same way Allow would.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.reset {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Do combines Allow/Record around op.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}
