package retry

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the breaker is open and the
// reset timeout has not elapsed yet.
var ErrOpen = errors.New("retry: circuit breaker open")

// BreakerState is the classic three-state breaker automaton.
type BreakerState int

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker is a simple consecutive-failure circuit breaker. After
// Threshold consecutive failures it opens and rejects calls for
// ResetTimeout; the first call allowed afterwards probes half-open, and
// its outcome closes or re-opens the circuit. The zero value is not
// valid; use NewBreaker.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	openedAt  time.Time
	threshold int
	reset     time.Duration
	now       func() time.Time

	trips int64 // closed->open transitions, for observability
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and probing again after reset. now replaces time.Now when
// non-nil (tests drive it manually).
func NewBreaker(threshold int, reset time.Duration, now func() time.Time) (*Breaker, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("retry: breaker threshold %d must be >= 1", threshold)
	}
	if reset <= 0 {
		return nil, fmt.Errorf("retry: breaker reset timeout must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, reset: reset, now: now}, nil
}

// Allow reports whether a call may proceed. It returns ErrOpen while the
// circuit is open; when the reset timeout has elapsed it transitions to
// half-open and admits a single probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return nil
	default: // open
		if b.now().Sub(b.openedAt) < b.reset {
			return ErrOpen
		}
		b.state = BreakerHalfOpen
		return nil
	}
}

// Record feeds one call outcome into the breaker.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.failures = 0
	}
}

// State returns the current state, resolving an elapsed open period to
// half-open the same way Allow would.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.reset {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Do combines Allow/Record around op.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}
