// Package retry provides context-aware retry with exponential backoff
// and full jitter, per-attempt timeouts, a max-elapsed budget, and a
// simple circuit breaker. It is the error-handling substrate for the
// fault-tolerant collection and labeling pipeline: the paper's
// deployment talked to remote scan services and reputation feeds that
// fail, time out and rate-limit, and every such interaction in the
// reproduction is wrapped by this package.
//
// Determinism matters here: the chaos harness replays the full pipeline
// under injected faults and asserts byte-identical results, so nothing
// in this package reads global mutable state. Jitter draws from a local
// generator seeded by the policy, and tests substitute the Sleep hook to
// avoid real timers entirely.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Default policy constants, used when the corresponding Policy field is
// zero.
const (
	DefaultMaxAttempts    = 5
	DefaultInitialBackoff = 50 * time.Millisecond
	DefaultMaxBackoff     = 2 * time.Second
	DefaultMultiplier     = 2.0
)

// Policy configures Do. The zero value is usable and selects the
// defaults above with no per-attempt timeout and no elapsed budget.
type Policy struct {
	// MaxAttempts bounds the total number of attempts (first try
	// included). Zero selects DefaultMaxAttempts; negative means retry
	// until the context or MaxElapsed budget expires.
	MaxAttempts int
	// InitialBackoff is the base delay before the second attempt.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth of the backoff.
	MaxBackoff time.Duration
	// Multiplier scales the backoff between attempts (default 2).
	Multiplier float64
	// MaxElapsed bounds the total time spent inside Do, sleeps included;
	// zero means no budget. The budget is checked against the attempt
	// clock before each sleep.
	MaxElapsed time.Duration
	// PerAttemptTimeout, when positive, wraps each attempt's context
	// with a deadline, so one hung call cannot eat the whole budget.
	PerAttemptTimeout time.Duration
	// JitterSeed seeds the full-jitter draw; identical policies produce
	// identical backoff sequences. Zero selects a fixed default seed.
	JitterSeed int64
	// Sleep replaces the real timer when non-nil. It must honour ctx
	// cancellation. Tests and the chaos harness pass a no-op.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now replaces time.Now for the MaxElapsed budget when non-nil.
	Now func() time.Time
	// OnRetry, when non-nil, is invoked before each re-attempt with the
	// 1-based number of the attempt that just failed and its error.
	OnRetry func(attempt int, err error)
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns it immediately.
// A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// ErrBudgetExhausted is wrapped into the returned error when Do gives up
// because MaxElapsed ran out before the operation succeeded.
var ErrBudgetExhausted = errors.New("retry: elapsed budget exhausted")

// Do runs op until it succeeds, returns a Permanent error, exhausts the
// attempt/elapsed budget, or ctx is done. The returned error is the last
// attempt's error (wrapped with attempt context); ctx errors are
// returned as-is.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	maxAttempts := p.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = DefaultMaxAttempts
	}
	initial := p.InitialBackoff
	if initial <= 0 {
		initial = DefaultInitialBackoff
	}
	maxBackoff := p.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = DefaultMultiplier
	}
	now := p.Now
	if now == nil {
		now = time.Now
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	seed := p.JitterSeed
	if seed == 0 {
		seed = 1
	}
	jitter := rand.New(rand.NewSource(seed))

	start := now()
	backoff := initial
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		if maxAttempts > 0 && attempt >= maxAttempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempt, err)
		}
		if p.MaxElapsed > 0 && now().Sub(start) >= p.MaxElapsed {
			return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempt, err)
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		// Full jitter: sleep uniformly in [0, backoff], then grow the
		// ceiling exponentially up to MaxBackoff.
		d := time.Duration(jitter.Int63n(int64(backoff) + 1))
		if err := sleep(ctx, d); err != nil {
			return err
		}
		backoff = time.Duration(float64(backoff) * mult)
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// realSleep waits for d or until ctx is done.
func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
