// Package reputation provides the external reputation sources the
// paper's labeling pipeline consults (Section II-B): an Alexa-style
// domain ranking (restricted to domains that stayed in the top million
// for about a year), private curated URL white- and blacklists, a Google
// Safe Browsing-like feed, and file whitelists standing in for the
// commercial whitelist and NIST's software reference library.
package reputation

import (
	"fmt"

	"repro/internal/dataset"
)

// AlexaList models the Alexa top-sites ranking. Only domains that
// consistently appeared in the top one million are listed, matching how
// the paper de-noises the raw Alexa feed.
type AlexaList struct {
	ranks map[string]int
}

// NewAlexaList builds the list from domain → rank. Ranks must be >= 1.
func NewAlexaList(ranks map[string]int) (*AlexaList, error) {
	cp := make(map[string]int, len(ranks))
	for d, r := range ranks {
		if d == "" {
			return nil, fmt.Errorf("reputation: empty domain in Alexa list")
		}
		if r < 1 {
			return nil, fmt.Errorf("reputation: domain %q has invalid rank %d", d, r)
		}
		cp[d] = r
	}
	return &AlexaList{ranks: cp}, nil
}

// Rank returns the domain's rank and whether the domain is listed.
func (a *AlexaList) Rank(domain string) (int, bool) {
	r, ok := a.ranks[domain]
	return r, ok
}

// InTopMillion reports whether the domain is in the stable top-1M list.
func (a *AlexaList) InTopMillion(domain string) bool {
	r, ok := a.ranks[domain]
	return ok && r <= 1_000_000
}

// Len returns the number of ranked domains.
func (a *AlexaList) Len() int { return len(a.ranks) }

// DomainList is a set of e2LDs, used for URL whitelists, blacklists and
// the Safe Browsing feed.
type DomainList struct {
	set map[string]struct{}
}

// NewDomainList builds a list from domains; empty strings are rejected.
func NewDomainList(domains []string) (*DomainList, error) {
	set := make(map[string]struct{}, len(domains))
	for _, d := range domains {
		if d == "" {
			return nil, fmt.Errorf("reputation: empty domain in list")
		}
		set[d] = struct{}{}
	}
	return &DomainList{set: set}, nil
}

// Contains reports membership.
func (l *DomainList) Contains(domain string) bool {
	_, ok := l.set[domain]
	return ok
}

// Len returns the list size.
func (l *DomainList) Len() int { return len(l.set) }

// FileList is a set of known file hashes (e.g. the commercial whitelist
// plus NSRL).
type FileList struct {
	set map[dataset.FileHash]struct{}
}

// NewFileList builds a list from hashes; empty hashes are rejected.
func NewFileList(hashes []dataset.FileHash) (*FileList, error) {
	set := make(map[dataset.FileHash]struct{}, len(hashes))
	for _, h := range hashes {
		if h == "" {
			return nil, fmt.Errorf("reputation: empty hash in file list")
		}
		set[h] = struct{}{}
	}
	return &FileList{set: set}, nil
}

// Contains reports membership.
func (l *FileList) Contains(h dataset.FileHash) bool {
	_, ok := l.set[h]
	return ok
}

// Len returns the list size.
func (l *FileList) Len() int { return len(l.set) }

// Oracle bundles every reputation source the labeling pipeline needs.
type Oracle struct {
	Alexa         *AlexaList
	URLWhitelist  *DomainList // private curated whitelist (Trend Micro's in the paper)
	URLBlacklist  *DomainList // private URL blacklist
	SafeBrowsing  *DomainList // Google Safe Browsing-like feed
	FileWhitelist *FileList   // commercial whitelist + NSRL
	// AgentURLWhitelist suppresses collection of downloads from major
	// software vendors at the agent (Section II-A), distinct from the
	// labeling whitelist.
	AgentURLWhitelist *DomainList
}

// NewOracle builds an oracle; nil components are replaced with empty
// lists so lookups are always safe.
func NewOracle(alexa *AlexaList, urlWL, urlBL, gsb *DomainList, fileWL *FileList, agentWL *DomainList) *Oracle {
	if alexa == nil {
		alexa = &AlexaList{ranks: map[string]int{}}
	}
	empty := func(l *DomainList) *DomainList {
		if l == nil {
			return &DomainList{set: map[string]struct{}{}}
		}
		return l
	}
	if fileWL == nil {
		fileWL = &FileList{set: map[dataset.FileHash]struct{}{}}
	}
	return &Oracle{
		Alexa:             alexa,
		URLWhitelist:      empty(urlWL),
		URLBlacklist:      empty(urlBL),
		SafeBrowsing:      empty(gsb),
		FileWhitelist:     fileWL,
		AgentURLWhitelist: empty(agentWL),
	}
}

// LabelDomain applies the paper's URL labeling rules to an e2LD:
// benign when the domain is in the stable Alexa top-1M AND matches the
// private curated whitelist; malicious when it matches Safe Browsing AND
// the private blacklist; unknown otherwise.
func (o *Oracle) LabelDomain(domain string) dataset.URLVerdict {
	if o.Alexa.InTopMillion(domain) && o.URLWhitelist.Contains(domain) {
		return dataset.URLBenign
	}
	if o.SafeBrowsing.Contains(domain) && o.URLBlacklist.Contains(domain) {
		return dataset.URLMalicious
	}
	return dataset.URLUnknown
}

// AlexaRank returns the domain's rank, or 0 when unranked. The feature
// extractor treats 0 as "not ranked".
func (o *Oracle) AlexaRank(domain string) int {
	r, ok := o.Alexa.Rank(domain)
	if !ok {
		return 0
	}
	return r
}
