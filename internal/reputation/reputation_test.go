package reputation

import (
	"testing"

	"repro/internal/dataset"
)

func TestAlexaList(t *testing.T) {
	a, err := NewAlexaList(map[string]int{"softonic.com": 120, "deep.com": 999_999_999})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := a.Rank("softonic.com"); !ok || r != 120 {
		t.Errorf("Rank = (%d, %v)", r, ok)
	}
	if _, ok := a.Rank("missing.com"); ok {
		t.Error("missing domain reported ranked")
	}
	if !a.InTopMillion("softonic.com") {
		t.Error("rank 120 should be top million")
	}
	if a.InTopMillion("deep.com") {
		t.Error("rank 999999999 should not be top million")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestAlexaListValidation(t *testing.T) {
	if _, err := NewAlexaList(map[string]int{"": 1}); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewAlexaList(map[string]int{"x.com": 0}); err == nil {
		t.Error("rank 0 accepted")
	}
}

func TestAlexaListCopiesInput(t *testing.T) {
	src := map[string]int{"a.com": 1}
	a, err := NewAlexaList(src)
	if err != nil {
		t.Fatal(err)
	}
	src["b.com"] = 2
	if _, ok := a.Rank("b.com"); ok {
		t.Error("AlexaList aliased caller's map")
	}
}

func TestDomainList(t *testing.T) {
	l, err := NewDomainList([]string{"good.com", "fine.net"})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains("good.com") || l.Contains("bad.com") {
		t.Error("membership wrong")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	if _, err := NewDomainList([]string{""}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestFileList(t *testing.T) {
	l, err := NewFileList([]dataset.FileHash{"h1", "h2"})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains("h1") || l.Contains("h3") {
		t.Error("membership wrong")
	}
	if _, err := NewFileList([]dataset.FileHash{""}); err == nil {
		t.Error("empty hash accepted")
	}
}

func mustDomains(t *testing.T, ds ...string) *DomainList {
	t.Helper()
	l, err := NewDomainList(ds)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestOracleLabelDomain(t *testing.T) {
	alexa, err := NewAlexaList(map[string]int{"popular.com": 50, "gray.com": 2000})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(
		alexa,
		mustDomains(t, "popular.com"),
		mustDomains(t, "evil.com"),
		mustDomains(t, "evil.com", "gray.com"),
		nil, nil,
	)
	// Benign requires Alexa top-1M AND private whitelist.
	if got := o.LabelDomain("popular.com"); got != dataset.URLBenign {
		t.Errorf("popular.com = %v, want benign", got)
	}
	// In Alexa but not whitelisted → unknown.
	if got := o.LabelDomain("gray.com"); got != dataset.URLUnknown {
		t.Errorf("gray.com = %v, want unknown (GSB hit without blacklist... )", got)
	}
	// Malicious requires GSB AND private blacklist.
	if got := o.LabelDomain("evil.com"); got != dataset.URLMalicious {
		t.Errorf("evil.com = %v, want malicious", got)
	}
	if got := o.LabelDomain("nowhere.com"); got != dataset.URLUnknown {
		t.Errorf("nowhere.com = %v, want unknown", got)
	}
}

func TestOracleNilComponentsSafe(t *testing.T) {
	o := NewOracle(nil, nil, nil, nil, nil, nil)
	if got := o.LabelDomain("x.com"); got != dataset.URLUnknown {
		t.Errorf("empty oracle verdict = %v", got)
	}
	if got := o.AlexaRank("x.com"); got != 0 {
		t.Errorf("empty oracle rank = %d", got)
	}
	if o.FileWhitelist.Contains("h") {
		t.Error("empty file whitelist contains something")
	}
	if o.AgentURLWhitelist.Contains("x.com") {
		t.Error("empty agent whitelist contains something")
	}
}

func TestOracleAlexaRank(t *testing.T) {
	alexa, err := NewAlexaList(map[string]int{"a.com": 7})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(alexa, nil, nil, nil, nil, nil)
	if got := o.AlexaRank("a.com"); got != 7 {
		t.Errorf("AlexaRank = %d", got)
	}
	if got := o.AlexaRank("b.com"); got != 0 {
		t.Errorf("unranked AlexaRank = %d, want 0", got)
	}
}
