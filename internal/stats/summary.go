package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over float64
// samples. The zero value is empty; add samples with Add and call
// Finalize (or any query method, which finalizes lazily) before querying.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF builds a CDF from the given samples.
func NewCDF(samples []float64) *CDF {
	c := &CDF{samples: append([]float64(nil), samples...)}
	c.Finalize()
	return c
}

// Add appends a sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Finalize sorts the samples; queries after Finalize are O(log n).
func (c *CDF) Finalize() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

// At returns P(X <= v), the fraction of samples at or below v.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.Finalize()
	idx := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.Finalize()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	pos := q * float64(len(c.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.samples[lo]
	}
	frac := pos - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// Points samples the CDF at n evenly spaced sample indices and returns
// (value, cumulative fraction) pairs, useful for plotting a text CDF.
func (c *CDF) Points(n int) [][2]float64 {
	c.Finalize()
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.samples) {
		n = len(c.samples)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.samples) / n
		if idx > len(c.samples) {
			idx = len(c.samples)
		}
		v := c.samples[idx-1]
		pts = append(pts, [2]float64{v, float64(idx) / float64(len(c.samples))})
	}
	return pts
}

// Histogram counts integer-valued observations.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add increments the count of bucket v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the observations in bucket v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in bucket v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// FractionAtMost returns the share of observations in buckets <= v.
func (h *Histogram) FractionAtMost(v int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for b, c := range h.counts {
		if b <= v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Buckets returns the bucket values in ascending order.
func (h *Histogram) Buckets() []int {
	out := make([]int, 0, len(h.counts))
	for b := range h.counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Counter tallies string-keyed occurrences and can report the top-k.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Count returns the tally for key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Total returns the sum of all tallies.
func (c *Counter) Total() int { return c.total }

// Distinct returns the number of distinct keys.
func (c *Counter) Distinct() int { return len(c.counts) }

// KV is a key with its count.
type KV struct {
	Key   string
	Count int
}

// Top returns up to k entries sorted by descending count; ties break by
// ascending key so output is deterministic.
func (c *Counter) Top(k int) []KV {
	all := make([]KV, 0, len(c.counts))
	for key, n := range c.counts {
		all = append(all, KV{Key: key, Count: n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Keys returns all keys in deterministic (sorted) order.
func (c *Counter) Keys() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Entropy computes the Shannon entropy (bits) of a discrete distribution
// given as class counts.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Percent formats a ratio as a percentage string with one decimal.
func Percent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// Ratio returns num/den as float64, or 0 when den is 0.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// KSDistance computes the two-sample Kolmogorov-Smirnov statistic
// between two finalized CDFs: the maximum absolute difference between
// their cumulative fractions, evaluated at every sample point of both.
// Returns 1 when either CDF is empty.
func KSDistance(a, b *CDF) float64 {
	if a == nil || b == nil || a.Len() == 0 || b.Len() == 0 {
		return 1
	}
	a.Finalize()
	b.Finalize()
	max := 0.0
	for _, samples := range [][]float64{a.samples, b.samples} {
		for _, x := range samples {
			d := math.Abs(a.At(x) - b.At(x))
			if d > max {
				max = d
			}
		}
	}
	return max
}
