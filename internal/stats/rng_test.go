package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Int63(), b.Int63(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	fa := Fork(a)
	fb := Fork(b)
	// Same parent state forks to identical children.
	for i := 0; i < 10; i++ {
		if fa.Int63() != fb.Int63() {
			t.Fatal("forked RNGs from identical parents diverged")
		}
	}
	// Draws on the fork do not disturb the parent.
	if a.Int63() != b.Int63() {
		t.Fatal("parent RNGs diverged after forking")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(1)
	if Bernoulli(r, 0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !Bernoulli(r, 1) {
		t.Error("Bernoulli(1) returned false")
	}
	if Bernoulli(r, -0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !Bernoulli(r, 1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(2)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestNewZipfValidation(t *testing.T) {
	r := NewRNG(3)
	if _, err := NewZipf(r, 1.0, 10); err == nil {
		t.Error("expected error for s <= 1")
	}
	if _, err := NewZipf(r, 2.0, 0); err == nil {
		t.Error("expected error for empty support")
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(4)
	z, err := NewZipf(r, 2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := z.Draw()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw %d out of range [1,100]", v)
		}
		if v == 1 {
			ones++
		}
	}
	if float64(ones)/n < 0.4 {
		t.Errorf("Zipf(2.0) P(1) = %v, want heavily skewed to 1", float64(ones)/n)
	}
}

func TestPowerLawIntValidation(t *testing.T) {
	r := NewRNG(5)
	if _, err := NewPowerLawInt(r, 2.5, 0); err == nil {
		t.Error("expected error for max < 1")
	}
	if _, err := NewPowerLawInt(r, 0, 10); err == nil {
		t.Error("expected error for alpha <= 0")
	}
}

func TestPowerLawIntLongTail(t *testing.T) {
	r := NewRNG(6)
	p, err := NewPowerLawInt(r, 3.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistogram()
	const n = 50000
	for i := 0; i < n; i++ {
		v := p.Draw()
		if v < 1 || v > 1000 {
			t.Fatalf("draw %d out of range", v)
		}
		h.Add(v)
	}
	// With alpha=3.5 about 85-92% of the mass sits on k=1 (1/zeta(3.5)
	// ~= 0.89): this is the regime the paper's prevalence distribution
	// lives in.
	if f := h.Fraction(1); f < 0.8 || f > 0.95 {
		t.Errorf("P(1) = %v, want ~0.85-0.92", f)
	}
}

func TestLogNormalIntClamp(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := LogNormalInt(r, 12, 2, 100, 5000)
		if v < 100 || v > 5000 {
			t.Fatalf("LogNormalInt out of clamp range: %d", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(8)
	if _, err := WeightedChoice(r, []float64{0, 0}); err == nil {
		t.Error("expected error for all-zero weights")
	}
	if _, err := WeightedChoice(r, []float64{1, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		idx, err := WeightedChoice(r, []float64{1, 2, 7})
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if f := float64(counts[2]) / 30000; math.Abs(f-0.7) > 0.02 {
		t.Errorf("weight-7 category frequency = %v, want ~0.7", f)
	}
}

func TestCategorical(t *testing.T) {
	r := NewRNG(9)
	if _, err := NewCategorical(r, nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewCategorical(r, []float64{0}); err == nil {
		t.Error("expected error for zero total")
	}
	c, err := NewCategorical(r, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := 0; i < 20000; i++ {
		counts[c.Draw()]++
	}
	if math.Abs(float64(counts[0])/20000-0.5) > 0.02 {
		t.Errorf("uniform categorical skewed: %v", counts)
	}
}

func TestSample(t *testing.T) {
	r := NewRNG(10)
	src := []int{1, 2, 3, 4, 5}
	got := Sample(r, src, 3)
	if len(got) != 3 {
		t.Fatalf("Sample returned %d items, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("Sample returned duplicate %d", v)
		}
		seen[v] = true
	}
	if len(Sample(r, src, 10)) != 5 {
		t.Error("Sample with k > len should return all elements")
	}
	// Source must be untouched.
	for i, v := range []int{1, 2, 3, 4, 5} {
		if src[i] != v {
			t.Fatal("Sample mutated its input")
		}
	}
}

func TestSampleDistinctProperty(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint8, k uint8) bool {
		size := int(n%50) + 1
		src := make([]int, size)
		for i := range src {
			src[i] = i
		}
		got := Sample(r, src, int(k%60))
		seen := map[int]bool{}
		for _, v := range got {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(got) <= size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoisson(t *testing.T) {
	r := NewRNG(20)
	if got := Poisson(r, 0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := Poisson(r, -1); got != 0 {
		t.Errorf("Poisson(-1) = %d", got)
	}
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Poisson(r, 2.5)
	}
	if mean := float64(sum) / n; math.Abs(mean-2.5) > 0.1 {
		t.Errorf("Poisson(2.5) mean = %v", mean)
	}
}

func TestExponential(t *testing.T) {
	r := NewRNG(21)
	if got := Exponential(r, 0, 10); got != 0 {
		t.Errorf("Exponential(0) = %v", got)
	}
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := Exponential(r, 3, 1000)
		if v < 0 || v > 1000 {
			t.Fatalf("Exponential out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.2 {
		t.Errorf("Exponential(3) mean = %v", mean)
	}
	// Cap respected.
	for i := 0; i < 1000; i++ {
		if v := Exponential(r, 100, 5); v > 5 {
			t.Fatalf("cap violated: %v", v)
		}
	}
}
