// Package stats provides deterministic random sampling primitives and
// summary statistics used by the synthetic trace generator and the
// measurement analytics.
//
// Every sampler takes an explicit *rand.Rand so that a fixed seed
// reproduces an identical dataset; nothing in this package reads global
// mutable state.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRNG returns a rand.Rand seeded deterministically from seed.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Fork derives a new independent RNG from r. The derived generator is
// decoupled from subsequent draws on r, which keeps module-local sampling
// stable when unrelated modules add or remove draws.
func Fork(r *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(r.Int63()))
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Zipf draws from a bounded Zipf distribution over [1, n] with exponent s.
// It is a small wrapper around rand.Zipf that memoizes nothing; callers
// that need many draws should use NewZipf.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf constructs a Zipf sampler over {1, ..., n} with exponent s > 1.
func NewZipf(r *rand.Rand, s float64, n uint64) (*Zipf, error) {
	if s <= 1 {
		return nil, fmt.Errorf("stats: zipf exponent must be > 1, got %v", s)
	}
	if n == 0 {
		return nil, fmt.Errorf("stats: zipf support must be non-empty")
	}
	z := rand.NewZipf(r, s, 1, n-1)
	if z == nil {
		return nil, fmt.Errorf("stats: invalid zipf parameters s=%v n=%d", s, n)
	}
	return &Zipf{z: z}, nil
}

// Draw returns a value in [1, n].
func (z *Zipf) Draw() uint64 {
	return z.z.Uint64() + 1
}

// PowerLawInt draws an integer in [1, max] with P(k) proportional to
// k^(-alpha). It uses inverse-CDF sampling over the precomputed weights
// held by the sampler.
type PowerLawInt struct {
	cum []float64
	r   *rand.Rand
}

// NewPowerLawInt builds a discrete power-law sampler over [1, max].
func NewPowerLawInt(r *rand.Rand, alpha float64, max int) (*PowerLawInt, error) {
	if max < 1 {
		return nil, fmt.Errorf("stats: power law support must be >= 1, got %d", max)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("stats: power law alpha must be > 0, got %v", alpha)
	}
	cum := make([]float64, max)
	total := 0.0
	for k := 1; k <= max; k++ {
		total += math.Pow(float64(k), -alpha)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &PowerLawInt{cum: cum, r: r}, nil
}

// Draw returns a value in [1, max].
func (p *PowerLawInt) Draw() int {
	u := p.r.Float64()
	idx := sort.SearchFloat64s(p.cum, u)
	if idx >= len(p.cum) {
		idx = len(p.cum) - 1
	}
	return idx + 1
}

// LogNormalInt draws a positive integer from a log-normal distribution
// with the given mu and sigma of the underlying normal, clamped to
// [min, max].
func LogNormalInt(r *rand.Rand, mu, sigma float64, min, max int64) int64 {
	v := int64(math.Round(math.Exp(r.NormFloat64()*sigma + mu)))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method; suitable for the small means used by the trace
// generator.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // guard against pathological means
		}
	}
}

// Exponential draws from an exponential distribution with the given
// mean, capped at max.
func Exponential(r *rand.Rand, mean, max float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := r.ExpFloat64() * mean
	if v > max {
		v = max
	}
	return v
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative and not all
// zero; otherwise it returns an error.
func WeightedChoice(r *rand.Rand, weights []float64) (int, error) {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("stats: negative or NaN weight at index %d: %v", i, w)
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("stats: all weights are zero")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}

// Categorical is a reusable weighted sampler over a fixed set of
// categories, built once from the weights (alias-free cumulative table;
// O(log n) per draw).
type Categorical struct {
	cum []float64
	r   *rand.Rand
}

// NewCategorical builds a categorical sampler from weights.
func NewCategorical(r *rand.Rand, weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: negative or NaN weight at index %d: %v", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: all categorical weights are zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Categorical{cum: cum, r: r}, nil
}

// Draw returns a category index.
func (c *Categorical) Draw() int {
	u := c.r.Float64()
	idx := sort.SearchFloat64s(c.cum, u)
	if idx >= len(c.cum) {
		idx = len(c.cum) - 1
	}
	return idx
}

// Shuffle permutes s in place using r.
func Shuffle[T any](r *rand.Rand, s []T) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Sample returns k distinct elements drawn uniformly from s. If k exceeds
// len(s) the whole slice is returned (copied, shuffled).
func Sample[T any](r *rand.Rand, s []T, k int) []T {
	cp := make([]T, len(s))
	copy(cp, s)
	Shuffle(r, cp)
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}
