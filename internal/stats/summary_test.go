package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.At(2.5); got != 0.5 {
		t.Errorf("At(2.5) = %v, want 0.5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF Quantile should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
}

func TestCDFAddLazyFinalize(t *testing.T) {
	var c CDF
	c.Add(3)
	c.Add(1)
	c.Add(2)
	if got := c.At(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("At(1) = %v, want 1/3", got)
	}
	c.Add(0.5)
	if got := c.At(0.75); got != 0.25 {
		t.Errorf("At(0.75) after re-add = %v, want 0.25", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := NewCDF(xs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	last := pts[len(pts)-1]
	if last[1] != 1.0 {
		t.Errorf("final cumulative fraction = %v, want 1", last[1])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] }) {
		t.Error("points not sorted by value")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 1, 2, 5} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(1) != 3 {
		t.Errorf("Count(1) = %d", h.Count(1))
	}
	if got := h.Fraction(1); got != 0.6 {
		t.Errorf("Fraction(1) = %v", got)
	}
	if got := h.FractionAtMost(2); got != 0.8 {
		t.Errorf("FractionAtMost(2) = %v", got)
	}
	if got := h.Buckets(); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("Buckets = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Fraction(1) != 0 || h.FractionAtMost(10) != 0 {
		t.Error("empty histogram fractions should be 0")
	}
}

func TestCounterTopDeterminism(t *testing.T) {
	c := NewCounter()
	c.AddN("b", 2)
	c.AddN("a", 2)
	c.AddN("z", 5)
	top := c.Top(3)
	if top[0].Key != "z" || top[1].Key != "a" || top[2].Key != "b" {
		t.Errorf("Top order = %v, want z,a,b (ties by key)", top)
	}
	if got := c.Top(1); len(got) != 1 {
		t.Errorf("Top(1) returned %d entries", len(got))
	}
	if c.Total() != 9 || c.Distinct() != 3 {
		t.Errorf("Total=%d Distinct=%d", c.Total(), c.Distinct())
	}
}

func TestCounterKeysSorted(t *testing.T) {
	c := NewCounter()
	for _, k := range []string{"x", "m", "a"} {
		c.Add(k)
	}
	keys := c.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Errorf("Keys not sorted: %v", keys)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Entropy(5,5) = %v, want 1", got)
	}
	if got := Entropy([]int{10, 0}); got != 0 {
		t.Errorf("Entropy(10,0) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v, want 0", got)
	}
	// Entropy of uniform over 4 classes is 2 bits.
	if got := Entropy([]int{3, 3, 3, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Entropy uniform 4 = %v, want 2", got)
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		ints := make([]int, len(counts))
		for i, c := range counts {
			ints[i] = int(c)
		}
		h := Entropy(ints)
		return h >= 0 && !math.IsNaN(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestPercentAndRatio(t *testing.T) {
	if got := Percent(1, 4); got != "25.0%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Errorf("Percent div0 = %q", got)
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio div0 = %v", got)
	}
}

func TestKSDistance(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3, 4, 5})
	same := NewCDF([]float64{1, 2, 3, 4, 5})
	if got := KSDistance(a, same); got != 0 {
		t.Errorf("identical CDFs distance = %v", got)
	}
	far := NewCDF([]float64{100, 101, 102})
	if got := KSDistance(a, far); got != 1 {
		t.Errorf("disjoint CDFs distance = %v, want 1", got)
	}
	if got := KSDistance(a, &CDF{}); got != 1 {
		t.Errorf("empty CDF distance = %v, want 1", got)
	}
	if got := KSDistance(nil, a); got != 1 {
		t.Errorf("nil CDF distance = %v, want 1", got)
	}
	// Symmetry.
	b := NewCDF([]float64{2, 3, 4, 5, 6, 7})
	if KSDistance(a, b) != KSDistance(b, a) {
		t.Error("KS distance not symmetric")
	}
}
