package dataset

import (
	"testing"
	"time"
)

func TestLabelString(t *testing.T) {
	tests := []struct {
		l    Label
		want string
	}{
		{LabelUnknown, "unknown"},
		{LabelBenign, "benign"},
		{LabelLikelyBenign, "likely benign"},
		{LabelMalicious, "malicious"},
		{LabelLikelyMalicious, "likely malicious"},
		{Label(99), "label(99)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("Label(%d).String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}

func TestLabelZeroValueIsUnknown(t *testing.T) {
	var l Label
	if l != LabelUnknown {
		t.Error("zero Label must be LabelUnknown")
	}
	var gt GroundTruth
	if gt.Label != LabelUnknown {
		t.Error("zero GroundTruth must be unknown")
	}
}

func TestMalwareTypeRoundTrip(t *testing.T) {
	for _, typ := range AllMalwareTypes {
		got, err := ParseMalwareType(typ.String())
		if err != nil {
			t.Errorf("ParseMalwareType(%q): %v", typ.String(), err)
			continue
		}
		if got != typ {
			t.Errorf("round trip %v -> %q -> %v", typ, typ.String(), got)
		}
	}
	if _, err := ParseMalwareType("notatype"); err == nil {
		t.Error("ParseMalwareType should reject unknown keywords")
	}
}

func TestAllMalwareTypesComplete(t *testing.T) {
	if len(AllMalwareTypes) != 11 {
		t.Errorf("expected 11 malware types (10 + undefined), got %d", len(AllMalwareTypes))
	}
	seen := map[MalwareType]bool{}
	for _, typ := range AllMalwareTypes {
		if seen[typ] {
			t.Errorf("duplicate type %v in AllMalwareTypes", typ)
		}
		seen[typ] = true
	}
}

func TestProcessCategoryString(t *testing.T) {
	if CategoryBrowser.String() != "browser" || CategoryAcrobat.String() != "acrobat reader" {
		t.Error("unexpected category names")
	}
	if len(AllProcessCategories) != 5 {
		t.Errorf("expected 5 process categories, got %d", len(AllProcessCategories))
	}
}

func TestBrowserString(t *testing.T) {
	if BrowserIE.String() != "IE" || BrowserChrome.String() != "Chrome" {
		t.Error("unexpected browser names")
	}
	if len(AllBrowsers) != 5 {
		t.Errorf("expected 5 browsers, got %d", len(AllBrowsers))
	}
}

func TestFileMetaPredicates(t *testing.T) {
	f := FileMeta{Hash: "h"}
	if f.Signed() || f.Packed() {
		t.Error("empty signer/packer should report unsigned/unpacked")
	}
	f.Signer = "Somoto Ltd."
	f.Packer = "NSIS"
	if !f.Signed() || !f.Packed() {
		t.Error("non-empty signer/packer should report signed/packed")
	}
}

func TestDownloadEventValidate(t *testing.T) {
	good := DownloadEvent{
		File: "f", Machine: "m", Process: "p",
		URL: "http://example.com/a.exe", Time: time.Now(),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	cases := []DownloadEvent{
		{Machine: "m", Process: "p", URL: "u", Time: time.Now()},
		{File: "f", Process: "p", URL: "u", Time: time.Now()},
		{File: "f", Machine: "m", URL: "u", Time: time.Now()},
		{File: "f", Machine: "m", Process: "p", Time: time.Now()},
		{File: "f", Machine: "m", Process: "p", URL: "u"},
	}
	for i, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid event accepted", i)
		}
	}
}

func TestURLVerdictString(t *testing.T) {
	if URLBenign.String() != "benign" || URLMalicious.String() != "malicious" || URLUnknown.String() != "unknown" {
		t.Error("unexpected URL verdict names")
	}
}

func TestMonth(t *testing.T) {
	jan := Month{2014, time.January}
	feb := Month{2014, time.February}
	dec := Month{2014, time.December}
	if !jan.Before(feb) || feb.Before(jan) {
		t.Error("Before ordering wrong within year")
	}
	if jan.Next() != feb {
		t.Error("Next within year wrong")
	}
	if dec.Next() != (Month{2015, time.January}) {
		t.Error("Next across year boundary wrong")
	}
	if jan.String() != "2014-01" {
		t.Errorf("String = %q", jan.String())
	}
	ts := time.Date(2014, time.March, 15, 10, 0, 0, 0, time.UTC)
	if MonthOf(ts) != (Month{2014, time.March}) {
		t.Error("MonthOf wrong")
	}
}

func TestCategoryFromPath(t *testing.T) {
	tests := []struct {
		path    string
		cat     ProcessCategory
		browser Browser
	}{
		{"C:/Program Files/Mozilla/firefox.exe", CategoryBrowser, BrowserFirefox},
		{"C:\\Program Files\\Google\\chrome.exe", CategoryBrowser, BrowserChrome},
		{"C:/Windows/System32/svchost.exe", CategoryWindows, BrowserNone},
		{"java.exe", CategoryJava, BrowserNone},
		{"C:/Program Files/Adobe/AcroRd32.exe", CategoryAcrobat, BrowserNone},
		{"C:/Apps/utorrent.exe", CategoryOther, BrowserNone},
		{"IEXPLORE.EXE", CategoryBrowser, BrowserIE},
		{"", CategoryOther, BrowserNone},
	}
	for _, tt := range tests {
		cat, br := CategoryFromPath(tt.path)
		if cat != tt.cat || br != tt.browser {
			t.Errorf("CategoryFromPath(%q) = (%v, %v), want (%v, %v)",
				tt.path, cat, br, tt.cat, tt.browser)
		}
	}
}
