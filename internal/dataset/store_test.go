package dataset

import (
	"fmt"
	"testing"
	"time"
)

func makeEvent(file, machine string, day int) DownloadEvent {
	return DownloadEvent{
		File:     FileHash(file),
		Machine:  MachineID(machine),
		Process:  "proc1",
		URL:      "http://example.com/" + file,
		Domain:   "example.com",
		Time:     time.Date(2014, time.January, day, 12, 0, 0, 0, time.UTC),
		Executed: true,
	}
}

func TestStoreAddAndFreeze(t *testing.T) {
	s := NewStore()
	if err := s.AddEvent(makeEvent("f1", "m1", 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEvent(makeEvent("f1", "m2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEvent(makeEvent("f2", "m1", 2)); err != nil {
		t.Fatal(err)
	}
	if s.Frozen() {
		t.Error("store should not be frozen yet")
	}
	s.Freeze()
	if !s.Frozen() {
		t.Error("store should be frozen")
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("NumEvents = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Error("events not sorted by time after Freeze")
		}
	}
}

func TestStoreRejectsWritesAfterFreeze(t *testing.T) {
	s := NewStore()
	s.Freeze()
	if err := s.AddEvent(makeEvent("f", "m", 1)); err == nil {
		t.Error("AddEvent after Freeze should fail")
	}
	if err := s.PutFile(&FileMeta{Hash: "f"}); err == nil {
		t.Error("PutFile after Freeze should fail")
	}
	if err := s.SetTruth("f", GroundTruth{Label: LabelBenign}); err == nil {
		t.Error("SetTruth after Freeze should fail")
	}
	if err := s.SetURLVerdict("example.com", URLBenign); err == nil {
		t.Error("SetURLVerdict after Freeze should fail")
	}
}

func TestStoreRejectsInvalidInput(t *testing.T) {
	s := NewStore()
	if err := s.AddEvent(DownloadEvent{}); err == nil {
		t.Error("invalid event accepted")
	}
	if err := s.PutFile(nil); err == nil {
		t.Error("nil file meta accepted")
	}
	if err := s.PutFile(&FileMeta{}); err == nil {
		t.Error("hashless file meta accepted")
	}
	if err := s.SetTruth("", GroundTruth{}); err == nil {
		t.Error("empty hash truth accepted")
	}
	if err := s.SetURLVerdict("", URLBenign); err == nil {
		t.Error("empty domain verdict accepted")
	}
}

func TestStorePrevalence(t *testing.T) {
	s := NewStore()
	// f1 downloaded by two distinct machines, one of them twice.
	for _, e := range []DownloadEvent{
		makeEvent("f1", "m1", 1),
		makeEvent("f1", "m1", 2),
		makeEvent("f1", "m2", 3),
		makeEvent("f2", "m3", 4),
	} {
		if err := s.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Freeze()
	if got := s.Prevalence("f1"); got != 2 {
		t.Errorf("Prevalence(f1) = %d, want 2 (distinct machines)", got)
	}
	if got := s.Prevalence("f2"); got != 1 {
		t.Errorf("Prevalence(f2) = %d, want 1", got)
	}
	if got := s.Prevalence("missing"); got != 0 {
		t.Errorf("Prevalence(missing) = %d, want 0", got)
	}
}

func TestStoreIndexes(t *testing.T) {
	s := NewStore()
	for _, e := range []DownloadEvent{
		makeEvent("f1", "m1", 5),
		makeEvent("f1", "m2", 1),
		makeEvent("f2", "m1", 3),
	} {
		if err := s.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Freeze()
	evs := s.Events()
	f1idx := s.EventsForFile("f1")
	if len(f1idx) != 2 {
		t.Fatalf("EventsForFile(f1) = %d entries", len(f1idx))
	}
	if !evs[f1idx[0]].Time.Before(evs[f1idx[1]].Time) {
		t.Error("file events not in time order")
	}
	m1idx := s.EventsForMachine("m1")
	if len(m1idx) != 2 {
		t.Fatalf("EventsForMachine(m1) = %d entries", len(m1idx))
	}
	if !evs[m1idx[0]].Time.Before(evs[m1idx[1]].Time) {
		t.Error("machine events not in time order")
	}
	if got := len(s.Machines()); got != 2 {
		t.Errorf("Machines = %d, want 2", got)
	}
	if got := len(s.DownloadedFiles()); got != 2 {
		t.Errorf("DownloadedFiles = %d, want 2", got)
	}
}

func TestStoreTruthAndVerdicts(t *testing.T) {
	s := NewStore()
	if err := s.SetTruth("f1", GroundTruth{Label: LabelMalicious, Type: TypeDropper, Family: "zbot"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetURLVerdict("bad.com", URLMalicious); err != nil {
		t.Fatal(err)
	}
	gt := s.Truth("f1")
	if gt.Label != LabelMalicious || gt.Type != TypeDropper || gt.Family != "zbot" {
		t.Errorf("Truth = %+v", gt)
	}
	if s.Label("f1") != LabelMalicious {
		t.Error("Label shorthand wrong")
	}
	if s.Label("never-seen") != LabelUnknown {
		t.Error("unlabeled file should be unknown")
	}
	if s.URLVerdict("bad.com") != URLMalicious {
		t.Error("URL verdict lost")
	}
	if s.URLVerdict("neutral.com") != URLUnknown {
		t.Error("unrecorded domain should be unknown")
	}
}

func TestStoreFileMeta(t *testing.T) {
	s := NewStore()
	meta := &FileMeta{Hash: "f1", Signer: "ACME", Size: 1000}
	if err := s.PutFile(meta); err != nil {
		t.Fatal(err)
	}
	if got := s.File("f1"); got == nil || got.Signer != "ACME" {
		t.Errorf("File(f1) = %+v", got)
	}
	if s.File("nope") != nil {
		t.Error("missing file should return nil")
	}
	if got := len(s.Files()); got != 1 {
		t.Errorf("Files() = %d entries", got)
	}
}

func TestStoreMonths(t *testing.T) {
	s := NewStore()
	mk := func(mon time.Month, day int) DownloadEvent {
		e := makeEvent(fmt.Sprintf("f-%d-%d", mon, day), "m1", 1)
		e.Time = time.Date(2014, mon, day, 0, 0, 0, 0, time.UTC)
		return e
	}
	for _, e := range []DownloadEvent{
		mk(time.March, 5), mk(time.January, 10), mk(time.January, 20), mk(time.February, 1),
	} {
		if err := s.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Freeze()
	months := s.Months()
	want := []Month{{2014, time.January}, {2014, time.February}, {2014, time.March}}
	if len(months) != len(want) {
		t.Fatalf("Months = %v", months)
	}
	for i := range want {
		if months[i] != want[i] {
			t.Errorf("Months[%d] = %v, want %v", i, months[i], want[i])
		}
	}
	jan := s.EventIndexesInMonth(Month{2014, time.January})
	if len(jan) != 2 {
		t.Errorf("January events = %d, want 2", len(jan))
	}
}

func TestStoreFreezeIdempotent(t *testing.T) {
	s := NewStore()
	if err := s.AddEvent(makeEvent("f1", "m1", 1)); err != nil {
		t.Fatal(err)
	}
	s.Freeze()
	s.Freeze() // must not panic or duplicate indexes
	if got := s.Prevalence("f1"); got != 1 {
		t.Errorf("Prevalence after double Freeze = %d", got)
	}
}
