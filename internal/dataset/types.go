// Package dataset defines the paper's data model: web-based software
// download events represented as 5-tuples (file, machine, process, URL,
// timestamp), the metadata attached to files and processes, the label
// taxonomy used for ground truth, and the malware behaviour-type
// vocabulary. It also provides an indexed in-memory event store that the
// measurement analytics query.
package dataset

import (
	"fmt"
	"strings"
	"time"
)

// FileHash uniquely identifies a software file (downloaded file or
// downloading process executable), standing in for the file hash of the
// real telemetry.
type FileHash string

// MachineID is the anonymized global unique machine identifier assigned
// by the vendor's software agent.
type MachineID string

// Label is the ground-truth label assigned to a file, process or URL
// after consulting all available sources (Section II-B).
type Label int

// Label values. Unknown is deliberately the zero value: a file with no
// ground truth whatsoever is unknown.
const (
	LabelUnknown Label = iota
	LabelBenign
	LabelLikelyBenign
	LabelMalicious
	LabelLikelyMalicious
)

// String returns the lowercase label name used in reports.
func (l Label) String() string {
	switch l {
	case LabelUnknown:
		return "unknown"
	case LabelBenign:
		return "benign"
	case LabelLikelyBenign:
		return "likely benign"
	case LabelMalicious:
		return "malicious"
	case LabelLikelyMalicious:
		return "likely malicious"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// MalwareType is the behaviour type of a malicious file (Section II-C,
// Table II).
type MalwareType int

// Behaviour types, ordered roughly from generic to specific; Specificity
// (the AVType tie-break rule) is defined separately in typeSpecificity.
const (
	TypeUndefined MalwareType = iota
	TypeTrojan
	TypeDropper
	TypePUP
	TypeAdware
	TypeBanker
	TypeBot
	TypeFakeAV
	TypeRansomware
	TypeWorm
	TypeSpyware
)

// AllMalwareTypes lists every behaviour type in report order (Table II
// order: most common first, then undefined last in some tables; here we
// keep declaration order and let reports sort).
var AllMalwareTypes = []MalwareType{
	TypeDropper, TypePUP, TypeAdware, TypeTrojan, TypeBanker, TypeBot,
	TypeFakeAV, TypeRansomware, TypeWorm, TypeSpyware, TypeUndefined,
}

// String returns the lowercase type keyword used in AV label maps and
// reports.
func (t MalwareType) String() string {
	switch t {
	case TypeUndefined:
		return "undefined"
	case TypeTrojan:
		return "trojan"
	case TypeDropper:
		return "dropper"
	case TypePUP:
		return "pup"
	case TypeAdware:
		return "adware"
	case TypeBanker:
		return "banker"
	case TypeBot:
		return "bot"
	case TypeFakeAV:
		return "fakeav"
	case TypeRansomware:
		return "ransomware"
	case TypeWorm:
		return "worm"
	case TypeSpyware:
		return "spyware"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseMalwareType maps a type keyword back to its MalwareType.
func ParseMalwareType(s string) (MalwareType, error) {
	for _, t := range AllMalwareTypes {
		if t.String() == s {
			return t, nil
		}
	}
	return TypeUndefined, fmt.Errorf("dataset: unknown malware type %q", s)
}

// ProcessCategory is the broad class of a downloading process
// (Section V-A): browsers, Windows system processes, Java runtime,
// Acrobat Reader, and everything else.
type ProcessCategory int

// Process categories.
const (
	CategoryOther ProcessCategory = iota
	CategoryBrowser
	CategoryWindows
	CategoryJava
	CategoryAcrobat
)

// AllProcessCategories lists the categories in Table X report order.
var AllProcessCategories = []ProcessCategory{
	CategoryBrowser, CategoryWindows, CategoryJava, CategoryAcrobat, CategoryOther,
}

// String returns the human-readable category name.
func (c ProcessCategory) String() string {
	switch c {
	case CategoryBrowser:
		return "browser"
	case CategoryWindows:
		return "windows"
	case CategoryJava:
		return "java"
	case CategoryAcrobat:
		return "acrobat reader"
	case CategoryOther:
		return "other"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// categoryByExe maps executable file names observed in the wild to
// process categories, the way the paper labels processes ("we leverage
// the name of the executable file on disk from which the process was
// launched ... we compiled a list of different file names observed in
// the wild for each process category").
var categoryByExe = map[string]ProcessCategory{
	"firefox.exe": CategoryBrowser, "chrome.exe": CategoryBrowser,
	"iexplore.exe": CategoryBrowser, "opera.exe": CategoryBrowser,
	"safari.exe":  CategoryBrowser,
	"svchost.exe": CategoryWindows, "rundll32.exe": CategoryWindows,
	"explorer.exe": CategoryWindows, "wuauclt.exe": CategoryWindows,
	"mshta.exe": CategoryWindows, "wscript.exe": CategoryWindows,
	"cscript.exe": CategoryWindows, "regsvr32.exe": CategoryWindows,
	"dllhost.exe": CategoryWindows, "taskhost.exe": CategoryWindows,
	"winlogon.exe": CategoryWindows, "services.exe": CategoryWindows,
	"msiexec.exe": CategoryWindows, "spoolsv.exe": CategoryWindows,
	"lsass.exe": CategoryWindows, "conhost.exe": CategoryWindows,
	"java.exe": CategoryJava, "javaw.exe": CategoryJava, "javaws.exe": CategoryJava,
	"acrord32.exe": CategoryAcrobat, "acrobat.exe": CategoryAcrobat,
}

// browserByExe maps browser executables to products.
var browserByExe = map[string]Browser{
	"firefox.exe": BrowserFirefox, "chrome.exe": BrowserChrome,
	"iexplore.exe": BrowserIE, "opera.exe": BrowserOpera,
	"safari.exe": BrowserSafari,
}

// CategoryFromPath derives a process category (and browser product, when
// applicable) from the executable's on-disk path, the paper's labeling
// method for downloading processes. Unknown names map to CategoryOther.
func CategoryFromPath(path string) (ProcessCategory, Browser) {
	exe := strings.ToLower(path)
	if i := strings.LastIndexAny(exe, "/\\"); i >= 0 {
		exe = exe[i+1:]
	}
	cat, ok := categoryByExe[exe]
	if !ok {
		return CategoryOther, BrowserNone
	}
	return cat, browserByExe[exe]
}

// Browser identifies a specific web browser product (Table XI).
type Browser int

// Browsers tracked individually by the study.
const (
	BrowserNone Browser = iota
	BrowserFirefox
	BrowserChrome
	BrowserOpera
	BrowserSafari
	BrowserIE
)

// AllBrowsers lists the browsers in Table XI order.
var AllBrowsers = []Browser{
	BrowserFirefox, BrowserChrome, BrowserOpera, BrowserSafari, BrowserIE,
}

// String returns the browser product name.
func (b Browser) String() string {
	switch b {
	case BrowserNone:
		return "none"
	case BrowserFirefox:
		return "Firefox"
	case BrowserChrome:
		return "Chrome"
	case BrowserOpera:
		return "Opera"
	case BrowserSafari:
		return "Safari"
	case BrowserIE:
		return "IE"
	default:
		return fmt.Sprintf("browser(%d)", int(b))
	}
}

// FileMeta carries the static metadata the vendor's infrastructure
// gathers for every file, including signing and packing information
// (Section IV-C). Processes are files too, so the same struct describes
// downloading processes.
type FileMeta struct {
	Hash   FileHash
	Size   int64
	Path   string // anonymized on-disk path, including file name
	Signer string // software signer subject; empty if unsigned
	CA     string // certification authority in the chain; empty if unsigned
	Packer string // packer product; empty if not packed

	// Process-related fields; zero values for plain downloaded files.
	Category ProcessCategory
	Browser  Browser
}

// Signed reports whether the file carries a (valid) software signature.
func (f *FileMeta) Signed() bool { return f.Signer != "" }

// Packed reports whether a known packer processed the file.
func (f *FileMeta) Packed() bool { return f.Packer != "" }

// DownloadEvent is the paper's 5-tuple (f, m, p, u, t): file f downloaded
// by machine m via process p from URL u at time t. Executed records
// whether the file was subsequently run on the machine; the collection
// server only keeps executed downloads.
type DownloadEvent struct {
	File     FileHash
	Machine  MachineID
	Process  FileHash
	URL      string
	Domain   string // effective 2LD of URL, precomputed
	Time     time.Time
	Executed bool
}

// Validate checks structural invariants of an event.
func (e *DownloadEvent) Validate() error {
	switch {
	case e.File == "":
		return fmt.Errorf("dataset: event has empty file hash")
	case e.Machine == "":
		return fmt.Errorf("dataset: event has empty machine id")
	case e.Process == "":
		return fmt.Errorf("dataset: event has empty process hash")
	case e.URL == "":
		return fmt.Errorf("dataset: event has empty URL")
	case e.Time.IsZero():
		return fmt.Errorf("dataset: event has zero timestamp")
	}
	return nil
}

// GroundTruth is the full label assignment produced by the labeling
// pipeline for one file: its label, and for malicious files the
// behaviour type and family derived from AV labels.
type GroundTruth struct {
	Label  Label
	Type   MalwareType
	Family string // AVclass-style family; "SINGLETON" style empty when underivable
}

// URLVerdict is the label assigned to a download URL (Section II-B).
type URLVerdict int

// URL verdicts.
const (
	URLUnknown URLVerdict = iota
	URLBenign
	URLMalicious
)

// String returns the verdict name.
func (v URLVerdict) String() string {
	switch v {
	case URLUnknown:
		return "unknown"
	case URLBenign:
		return "benign"
	case URLMalicious:
		return "malicious"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}
