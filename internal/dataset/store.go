package dataset

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Store is an indexed, in-memory collection of download events plus the
// file metadata and ground truth attached to them. It is the dataset the
// measurement analytics and the rule learner consume.
//
// A Store is safe for concurrent reads after Freeze; writes (AddEvent,
// PutFile, SetTruth) are serialized internally but must not race with
// reads of the derived indexes.
type Store struct {
	mu     sync.RWMutex
	events []DownloadEvent
	files  map[FileHash]*FileMeta
	truth  map[FileHash]GroundTruth
	urls   map[string]URLVerdict // keyed by e2LD

	frozen bool

	// Derived indexes, built by Freeze.
	prevalence map[FileHash]int
	byFile     map[FileHash][]int
	byMachine  map[MachineID][]int
	byMonth    map[Month][]int
	months     []Month
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		files: make(map[FileHash]*FileMeta),
		truth: make(map[FileHash]GroundTruth),
		urls:  make(map[string]URLVerdict),
	}
}

// AddEvent appends a validated event to the store.
func (s *Store) AddEvent(e DownloadEvent) error {
	if err := e.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return fmt.Errorf("dataset: store is frozen")
	}
	s.events = append(s.events, e)
	return nil
}

// PutFile registers metadata for a file (or process executable).
// Re-registering the same hash overwrites the previous metadata.
func (s *Store) PutFile(m *FileMeta) error {
	if m == nil || m.Hash == "" {
		return fmt.Errorf("dataset: file metadata must have a hash")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return fmt.Errorf("dataset: store is frozen")
	}
	s.files[m.Hash] = m
	return nil
}

// SetTruth records the ground-truth assignment for a file hash.
func (s *Store) SetTruth(h FileHash, gt GroundTruth) error {
	if h == "" {
		return fmt.Errorf("dataset: empty file hash")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return fmt.Errorf("dataset: store is frozen")
	}
	s.truth[h] = gt
	return nil
}

// SetURLVerdict records the verdict for a download domain (e2LD).
func (s *Store) SetURLVerdict(domain string, v URLVerdict) error {
	if domain == "" {
		return fmt.Errorf("dataset: empty domain")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return fmt.Errorf("dataset: store is frozen")
	}
	s.urls[domain] = v
	return nil
}

// Freeze sorts events by time and builds the derived indexes. After
// Freeze the store rejects writes and all read methods are safe for
// concurrent use.
func (s *Store) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return
	}
	sort.SliceStable(s.events, func(i, j int) bool {
		return s.events[i].Time.Before(s.events[j].Time)
	})
	s.byFile = make(map[FileHash][]int)
	s.byMachine = make(map[MachineID][]int)
	machinesPerFile := make(map[FileHash]map[MachineID]struct{})
	for i := range s.events {
		e := &s.events[i]
		s.byFile[e.File] = append(s.byFile[e.File], i)
		s.byMachine[e.Machine] = append(s.byMachine[e.Machine], i)
		set, ok := machinesPerFile[e.File]
		if !ok {
			set = make(map[MachineID]struct{}, 1)
			machinesPerFile[e.File] = set
		}
		set[e.Machine] = struct{}{}
	}
	s.prevalence = make(map[FileHash]int, len(machinesPerFile))
	for f, set := range machinesPerFile {
		s.prevalence[f] = len(set)
	}
	s.byMonth = make(map[Month][]int)
	for i := range s.events {
		m := MonthOf(s.events[i].Time)
		if _, seen := s.byMonth[m]; !seen {
			s.months = append(s.months, m)
		}
		s.byMonth[m] = append(s.byMonth[m], i)
	}
	sort.Slice(s.months, func(i, j int) bool { return s.months[i].Before(s.months[j]) })
	s.frozen = true
}

// Frozen reports whether Freeze has run.
func (s *Store) Frozen() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.frozen
}

// NumEvents returns the number of events.
func (s *Store) NumEvents() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// Events returns the event slice. After Freeze it is sorted by time; the
// caller must not modify it.
func (s *Store) Events() []DownloadEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.events
}

// File returns the metadata for hash, or nil when unregistered.
func (s *Store) File(h FileHash) *FileMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.files[h]
}

// Files returns all registered file hashes in unspecified order.
func (s *Store) Files() []FileHash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]FileHash, 0, len(s.files))
	for h := range s.files {
		out = append(out, h)
	}
	return out
}

// Truth returns the ground truth for hash. Files never labeled get the
// zero value, i.e. LabelUnknown.
func (s *Store) Truth(h FileHash) GroundTruth {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.truth[h]
}

// Label is shorthand for Truth(h).Label.
func (s *Store) Label(h FileHash) Label { return s.Truth(h).Label }

// URLVerdict returns the verdict recorded for a domain, or URLUnknown.
func (s *Store) URLVerdict(domain string) URLVerdict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.urls[domain]
}

// Prevalence returns the number of distinct machines that downloaded the
// file, as observed in the stored (i.e. post-collection-server) events.
// The store must be frozen.
func (s *Store) Prevalence(h FileHash) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.prevalence[h]
}

// EventsForFile returns indexes (into Events()) of the events that
// downloaded file h, in time order. The store must be frozen.
func (s *Store) EventsForFile(h FileHash) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byFile[h]
}

// EventsForMachine returns indexes of machine m's events in time order.
// The store must be frozen.
func (s *Store) EventsForMachine(m MachineID) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byMachine[m]
}

// Machines returns all machine IDs observed in events. The store must be
// frozen.
func (s *Store) Machines() []MachineID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]MachineID, 0, len(s.byMachine))
	for m := range s.byMachine {
		out = append(out, m)
	}
	return out
}

// DownloadedFiles returns the distinct downloaded file hashes (i.e. files
// appearing as the File of some event, regardless of metadata
// registration). The store must be frozen.
func (s *Store) DownloadedFiles() []FileHash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]FileHash, 0, len(s.byFile))
	for f := range s.byFile {
		out = append(out, f)
	}
	return out
}

// Month identifies a calendar month.
type Month struct {
	Year int
	Mon  time.Month
}

// MonthOf returns the Month containing t.
func MonthOf(t time.Time) Month {
	return Month{Year: t.Year(), Mon: t.Month()}
}

// String formats the month like "2014-01".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, int(m.Mon)) }

// Before reports whether m is earlier than other.
func (m Month) Before(other Month) bool {
	if m.Year != other.Year {
		return m.Year < other.Year
	}
	return m.Mon < other.Mon
}

// Next returns the following calendar month.
func (m Month) Next() Month {
	if m.Mon == time.December {
		return Month{Year: m.Year + 1, Mon: time.January}
	}
	return Month{Year: m.Year, Mon: m.Mon + 1}
}

// Months returns the distinct months spanned by the stored events, in
// chronological order. The store must be frozen.
func (s *Store) Months() []Month {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.months
}

// EventIndexesInMonth returns indexes of events whose timestamp falls in
// month m, in time order. The store must be frozen; the caller must not
// modify the returned slice.
func (s *Store) EventIndexesInMonth(m Month) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byMonth[m]
}
