package polonium

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
)

// buildGraphStore creates a store where machine hygiene is informative:
// dirty machines host seeded malware plus an unlabeled file, clean
// machines host seeded benign files plus an unlabeled file.
func buildGraphStore(t *testing.T) *dataset.Store {
	t.Helper()
	store := dataset.NewStore()
	at := time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC)
	add := func(file, machine string) {
		t.Helper()
		err := store.AddEvent(dataset.DownloadEvent{
			File: dataset.FileHash(file), Machine: dataset.MachineID(machine),
			Process: "proc", URL: "http://x.com/" + file, Domain: "x.com",
			Time: at, Executed: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Minute)
	}
	for i := 0; i < 5; i++ {
		dirty := fmt.Sprintf("dirty%d", i)
		add("mal-seed", dirty)
		add("probe-dirty", dirty) // unlabeled, hosted only by dirty machines
		clean := fmt.Sprintf("clean%d", i)
		add("ben-seed", clean)
		add("probe-clean", clean)
	}
	if err := store.SetTruth("mal-seed", dataset.GroundTruth{Label: dataset.LabelMalicious, Type: dataset.TypeTrojan}); err != nil {
		t.Fatal(err)
	}
	if err := store.SetTruth("ben-seed", dataset.GroundTruth{Label: dataset.LabelBenign}); err != nil {
		t.Fatal(err)
	}
	store.Freeze()
	return store
}

func allIdx(store *dataset.Store) []int {
	out := make([]int, store.NumEvents())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRunValidation(t *testing.T) {
	store := buildGraphStore(t)
	if _, err := Run(nil, nil, DefaultConfig()); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := Run(dataset.NewStore(), nil, DefaultConfig()); err == nil {
		t.Error("unfrozen store accepted")
	}
	bad := DefaultConfig()
	bad.Iterations = 0
	if _, err := Run(store, allIdx(store), bad); err == nil {
		t.Error("zero iterations accepted")
	}
	bad = DefaultConfig()
	bad.Damping = 2
	if _, err := Run(store, allIdx(store), bad); err == nil {
		t.Error("damping > 1 accepted")
	}
	if _, err := Run(store, []int{9999}, DefaultConfig()); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestRunPropagatesHygiene(t *testing.T) {
	store := buildGraphStore(t)
	res, err := Run(store, allIdx(store), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Seeds pinned.
	if res.FileScore["mal-seed"] < 0.9 {
		t.Errorf("mal seed score = %v", res.FileScore["mal-seed"])
	}
	if res.FileScore["ben-seed"] > 0.1 {
		t.Errorf("ben seed score = %v", res.FileScore["ben-seed"])
	}
	// Belief flows to the unlabeled probes through machine hygiene.
	dirtyProbe := res.FileScore["probe-dirty"]
	cleanProbe := res.FileScore["probe-clean"]
	if dirtyProbe <= cleanProbe {
		t.Errorf("probe on dirty machines (%v) should outscore probe on clean machines (%v)", dirtyProbe, cleanProbe)
	}
	if res.MachineHygiene["dirty0"] <= res.MachineHygiene["clean0"] {
		t.Error("dirty machine hygiene should exceed clean machine hygiene")
	}
}

func TestEvaluateBuckets(t *testing.T) {
	store := buildGraphStore(t)
	res, err := Run(store, allIdx(store), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	buckets := Evaluate(store, res, allIdx(store), 0.5)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	// mal-seed and ben-seed have prevalence 5 -> bucket prev>=4.
	hi := buckets[2]
	if hi.Malicious != 1 || hi.Detected != 1 {
		t.Errorf("high bucket = %+v", hi)
	}
	if hi.Benign != 1 || hi.FalsePos != 0 {
		t.Errorf("high bucket benign = %+v", hi)
	}
	if got := hi.DetectionRate(); got != 1.0 {
		t.Errorf("detection rate = %v", got)
	}
	var empty BucketEval
	if empty.DetectionRate() != 0 || empty.FPRate() != 0 {
		t.Error("empty bucket rates should be 0")
	}
}

func TestRunDeterministic(t *testing.T) {
	store := buildGraphStore(t)
	a, err := Run(store, allIdx(store), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(store, allIdx(store), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for f, s := range a.FileScore {
		if b.FileScore[f] != s {
			t.Fatalf("score for %s differs between runs", f)
		}
	}
}
