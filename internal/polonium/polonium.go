// Package polonium implements a simplified Polonium-style file-reputation
// system (Chau et al., "Polonium: Tera-Scale Graph Mining for Malware
// Detection") as a comparison baseline. Polonium propagates belief over
// the bipartite machine-file graph: machines earn a hygiene score from
// the known reputation of the files they host, and files earn a goodness
// score from the hygiene of the machines hosting them.
//
// The paper positions its rule-based classifier against exactly this
// class of systems: "Polonium reports 48% detection rate on files with
// prevalences of 2 and 3, and it does not work on files seen on single
// machines — overall accounting for 94% of the dataset". The Evaluate
// helper reproduces that per-prevalence breakdown on the synthetic
// corpus.
package polonium

import (
	"fmt"

	"repro/internal/dataset"
)

// Config controls the propagation.
type Config struct {
	// Iterations of machine<->file belief exchange.
	Iterations int
	// Damping blends each round's new score with the previous one.
	Damping float64
	// PriorMalicious is the prior P(malicious) for files without ground
	// truth.
	PriorMalicious float64
}

// DefaultConfig mirrors the usual Polonium settings: few iterations,
// strong damping, a one-in-two prior.
func DefaultConfig() Config {
	return Config{Iterations: 6, Damping: 0.5, PriorMalicious: 0.5}
}

// Result holds the propagated scores.
type Result struct {
	// FileScore is P(malicious) per downloaded file.
	FileScore map[dataset.FileHash]float64
	// MachineHygiene is P(machine hosts malware) per machine.
	MachineHygiene map[dataset.MachineID]float64
}

// Run propagates belief over the store's machine-file graph. Seed labels
// come from the store's ground truth restricted to the given training
// event indexes; files outside the seed set start at the prior. The
// store must be frozen.
func Run(store *dataset.Store, trainIdx []int, cfg Config) (*Result, error) {
	if store == nil || !store.Frozen() {
		return nil, fmt.Errorf("polonium: store must be frozen")
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("polonium: iterations must be >= 1")
	}
	if cfg.Damping < 0 || cfg.Damping > 1 {
		return nil, fmt.Errorf("polonium: damping must be in [0,1]")
	}
	events := store.Events()

	// Build the bipartite adjacency restricted to training events.
	filesOf := make(map[dataset.MachineID][]dataset.FileHash)
	machinesOf := make(map[dataset.FileHash][]dataset.MachineID)
	seenPair := make(map[[2]string]struct{})
	for _, i := range trainIdx {
		if i < 0 || i >= len(events) {
			return nil, fmt.Errorf("polonium: event index %d out of range", i)
		}
		e := &events[i]
		key := [2]string{string(e.Machine), string(e.File)}
		if _, dup := seenPair[key]; dup {
			continue
		}
		seenPair[key] = struct{}{}
		filesOf[e.Machine] = append(filesOf[e.Machine], e.File)
		machinesOf[e.File] = append(machinesOf[e.File], e.Machine)
	}

	res := &Result{
		FileScore:      make(map[dataset.FileHash]float64, len(machinesOf)),
		MachineHygiene: make(map[dataset.MachineID]float64, len(filesOf)),
	}
	// Seeds: ground-truth labels pin file scores.
	seed := make(map[dataset.FileHash]float64)
	for f := range machinesOf {
		switch store.Label(f) {
		case dataset.LabelMalicious:
			seed[f] = 0.99
		case dataset.LabelBenign:
			seed[f] = 0.01
		}
		res.FileScore[f] = cfg.PriorMalicious
		if s, ok := seed[f]; ok {
			res.FileScore[f] = s
		}
	}
	for m := range filesOf {
		res.MachineHygiene[m] = cfg.PriorMalicious
	}

	for it := 0; it < cfg.Iterations; it++ {
		// Machines average the maliciousness of their files.
		for m, files := range filesOf {
			sum := 0.0
			for _, f := range files {
				sum += res.FileScore[f]
			}
			newScore := sum / float64(len(files))
			res.MachineHygiene[m] = cfg.Damping*res.MachineHygiene[m] + (1-cfg.Damping)*newScore
		}
		// Files average the hygiene of their machines; seeds stay pinned.
		for f, machines := range machinesOf {
			if s, pinned := seed[f]; pinned {
				res.FileScore[f] = s
				continue
			}
			sum := 0.0
			for _, m := range machines {
				sum += res.MachineHygiene[m]
			}
			newScore := sum / float64(len(machines))
			res.FileScore[f] = cfg.Damping*res.FileScore[f] + (1-cfg.Damping)*newScore
		}
	}
	return res, nil
}

// BucketEval is the detection performance within one prevalence bucket.
type BucketEval struct {
	Bucket    string
	Malicious int // ground-truth malicious files in the bucket
	Detected  int // of those, files scored above the threshold
	Benign    int
	FalsePos  int
}

// DetectionRate returns Detected/Malicious.
func (b *BucketEval) DetectionRate() float64 {
	if b.Malicious == 0 {
		return 0
	}
	return float64(b.Detected) / float64(b.Malicious)
}

// FPRate returns FalsePos/Benign.
func (b *BucketEval) FPRate() float64 {
	if b.Benign == 0 {
		return 0
	}
	return float64(b.FalsePos) / float64(b.Benign)
}

// Evaluate scores labeled test files (by event indexes) against the
// propagated reputation at the given threshold, bucketed by observed
// prevalence — the axis on which the paper says graph methods fall over.
func Evaluate(store *dataset.Store, res *Result, testIdx []int, threshold float64) []BucketEval {
	buckets := []BucketEval{
		{Bucket: "prev=1"},
		{Bucket: "prev=2-3"},
		{Bucket: "prev>=4"},
	}
	bucketOf := func(p int) *BucketEval {
		switch {
		case p <= 1:
			return &buckets[0]
		case p <= 3:
			return &buckets[1]
		default:
			return &buckets[2]
		}
	}
	events := store.Events()
	seen := make(map[dataset.FileHash]struct{})
	for _, i := range testIdx {
		if i < 0 || i >= len(events) {
			continue
		}
		f := events[i].File
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		label := store.Label(f)
		if label != dataset.LabelMalicious && label != dataset.LabelBenign {
			continue
		}
		score, ok := res.FileScore[f]
		if !ok {
			// Never seen in training: no graph evidence at all. Scored
			// at the prior, i.e. undetectable at any sensible threshold.
			score = 0.5
		}
		b := bucketOf(store.Prevalence(f))
		if label == dataset.LabelMalicious {
			b.Malicious++
			if score > threshold {
				b.Detected++
			}
		} else {
			b.Benign++
			if score > threshold {
				b.FalsePos++
			}
		}
	}
	return buckets
}
