// Avlabels demonstrates the AV-label processing substrates in isolation:
// the simulated multi-engine scan service, the AVclass-style family
// derivation and the AVType behaviour-type extraction, including the
// paper's own worked examples (the Zbot voting case and the
// dropper-vs-Artemis specificity case).
//
// Run with:
//
//	go run ./examples/avlabels
package main

import (
	"fmt"
	"time"

	"repro/internal/avclass"
	"repro/internal/avsim"
	"repro/internal/avtype"
	"repro/internal/dataset"
)

func main() {
	// The paper's Section II-C examples, straight through AVType.
	ex := avtype.NewExtractor(nil)
	voting := map[string]string{
		"Symantec":  "Trojan.Zbot",
		"McAfee":    "Downloader-FYH!6C7411D1C043",
		"Kaspersky": "Trojan-Spy.Win32.Zbot.ruxa",
		"Microsoft": "PWS:Win32/Zbot",
	}
	typ, res := ex.Extract(voting)
	fmt.Printf("paper voting example      -> %s (resolved by %s)\n", typ, res)

	specificity := map[string]string{
		"Kaspersky": "Trojan-Downloader.Win32.Agent.heqj",
		"McAfee":    "Artemis!DEC3771868CB",
	}
	typ, res = ex.Extract(specificity)
	fmt.Printf("paper specificity example -> %s (resolved by %s)\n", typ, res)

	// AVclass family derivation over the same label set.
	labeler := avclass.NewLabeler()
	fam := labeler.Label(voting)
	fmt.Printf("AVclass family            -> %q (support %d engines)\n\n", fam.Family, fam.Support)

	// Simulate the scan service: a banker sample scanned at download
	// time and again two years later, showing signature development.
	svc := avsim.NewDefaultService()
	t0 := time.Date(2014, time.March, 1, 0, 0, 0, 0, time.UTC)
	sample := &avsim.Sample{
		Hash:          "demo-banker",
		InCorpus:      true,
		FirstScan:     t0,
		LastScan:      t0.AddDate(2, 0, 0),
		TrueMalicious: true,
		Type:          dataset.TypeBanker,
		Family:        "zbot",
		FamilyVisible: true,
	}
	early := svc.Scan(sample, t0.AddDate(0, 0, 7))
	late := svc.Scan(sample, t0.AddDate(2, 0, 0))
	fmt.Printf("detections one week after first submission: %d of %d engines\n",
		len(early.Detections()), svc.NumEngines())
	fmt.Printf("detections two years later:                  %d of %d engines\n\n",
		len(late.Detections()), svc.NumEngines())

	fmt.Println("two-year labels from the leading engines:")
	for eng, label := range late.LeadingLabels() {
		fmt.Printf("  %-12s %s\n", eng, label)
	}
	typ, res = ex.Extract(late.LeadingLabels())
	fam = labeler.Label(late.AllLabels())
	fmt.Printf("\nderived type:   %s (via %s)\n", typ, res)
	fmt.Printf("derived family: %q\n", fam.Family)
}
