// Unknownlabeling walks through the paper's Section VI workflow in
// detail: explore the characteristics of unknown files, train the
// rule-based classifier on a month of labeled downloads, classify the
// following month's unknowns, and show — for a few newly labeled files —
// exactly which human-readable rules assigned the label, the
// interpretability property the paper emphasizes.
//
// Run with:
//
//	go run ./examples/unknownlabeling
package main

import (
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := experiments.Run(synth.DefaultConfig(23, 0.01))
	if err != nil {
		return err
	}
	store := p.Store

	// Characteristics of unknown files (Section VI-A).
	top := p.Analyzer.UnknownDomains(5)
	fmt.Println("top domains serving unknown files:")
	for _, kv := range top {
		fmt.Printf("  %-28s %d downloads\n", kv.Key, kv.Count)
	}
	perCat, total := p.Analyzer.UnknownByCategory()
	fmt.Printf("\nunknown files by downloading process category (total %d):\n", total)
	for _, cat := range dataset.AllProcessCategories {
		fmt.Printf("  %-16s %d\n", cat.String(), perCat[cat])
	}

	// Train on month 1, classify month 2's unknowns.
	months := store.Months()
	ex, err := features.NewExtractor(store, p.Result.Oracle)
	if err != nil {
		return err
	}
	train, err := ex.Instances(store.EventIndexesInMonth(months[0]))
	if err != nil {
		return err
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		return err
	}
	unknowns, err := ex.UnknownInstances(store.EventIndexesInMonth(months[1]))
	if err != nil {
		return err
	}
	res := clf.ClassifyUnknowns(unknowns, store)
	fmt.Printf("\n%s unknowns: %d; matched %.1f%%; labeled %d malicious / %d benign; %d rejected\n",
		months[1], res.Total, 100*res.MatchRate(), res.Malicious, res.Benign, res.Rejected)

	// Attribution: show the rules behind a few new labels.
	fmt.Println("\nsample attributions (every label traces to human-readable rules):")
	shown := 0
	for _, group := range classify.GroupByFile(unknowns) {
		verdict, matched := clf.ClassifyFile(group)
		if verdict != classify.VerdictMalicious && verdict != classify.VerdictBenign {
			continue
		}
		fmt.Printf("  file %s -> %s\n", group[0].File, verdict)
		for _, ri := range matched {
			fmt.Printf("    because: %s\n", clf.Rules[ri].String())
		}
		shown++
		if shown == 5 {
			break
		}
	}
	return nil
}
