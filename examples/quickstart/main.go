// Quickstart: generate a small synthetic download-telemetry dataset,
// label it with the full ground-truth pipeline, print the headline
// long-tail measurements, train the PART rule classifier on one month
// and use it to label the next month's unknown files.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Generate and label a small dataset (0.5% of the paper's scale).
	p, err := experiments.Run(synth.DefaultConfig(7, 0.005))
	if err != nil {
		return err
	}
	store := p.Store
	fmt.Printf("dataset: %d events, %d files, %d machines\n",
		store.NumEvents(), len(store.DownloadedFiles()), len(store.Machines()))

	// 2. The long tail: label mix and prevalence.
	var unknown, malicious, benign, prev1 int
	files := store.DownloadedFiles()
	for _, f := range files {
		switch store.Label(f) {
		case dataset.LabelUnknown:
			unknown++
		case dataset.LabelMalicious:
			malicious++
		case dataset.LabelBenign:
			benign++
		}
		if store.Prevalence(f) == 1 {
			prev1++
		}
	}
	fmt.Printf("labels: %.1f%% unknown, %.1f%% malicious, %.1f%% benign\n",
		pct(unknown, len(files)), pct(malicious, len(files)), pct(benign, len(files)))
	fmt.Printf("long tail: %.1f%% of files were downloaded by exactly one machine\n",
		pct(prev1, len(files)))
	fmt.Printf("reach: %.1f%% of machines downloaded at least one unknown file\n\n",
		100*p.Analyzer.MachinesTouchingUnknown())

	// 3. Train the rule classifier on the first month.
	months := store.Months()
	if len(months) < 2 {
		return fmt.Errorf("need at least two months of data")
	}
	ex, err := features.NewExtractor(store, p.Result.Oracle)
	if err != nil {
		return err
	}
	train, err := ex.Instances(store.EventIndexesInMonth(months[0]))
	if err != nil {
		return err
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %s: %d rules selected (of %d learned); examples:\n",
		months[0], len(clf.Rules), len(clf.AllRules))
	for i, r := range clf.Rules {
		if i == 3 {
			break
		}
		fmt.Printf("  %s\n", r.String())
	}

	// 4. Label the next month's unknown files.
	unknowns, err := ex.UnknownInstances(store.EventIndexesInMonth(months[1]))
	if err != nil {
		return err
	}
	res := clf.ClassifyUnknowns(unknowns, store)
	fmt.Printf("\nunknowns in %s: %d files; %.1f%% matched rules -> %d labeled malicious, %d benign (%d rejected for conflicts)\n",
		months[1], res.Total, 100*res.MatchRate(), res.Malicious, res.Benign, res.Rejected)
	fmt.Printf("the newly labeled files were downloaded by %d machines\n", res.Machines)
	return nil
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
