// Operational demonstrates how the system runs in production, per the
// paper's Section VI-D ("rules generated based on past events are used
// to classify new, unknown events in the future"):
//
//  1. train on a month of labeled telemetry,
//  2. export the rule set as JSON (the artifact a threat analyst
//     reviews — and can edit),
//  3. reload the reviewed rule set into a fresh classifier,
//  4. stream the next month's downloads through it, labeling unknowns
//     as they arrive.
//
// Run with:
//
//	go run ./examples/operational
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/serve"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := experiments.Run(synth.DefaultConfig(31, 0.008))
	if err != nil {
		return err
	}
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return err
	}

	// 1. Train.
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		return err
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %s: %d rules selected\n", months[0], len(clf.Rules))

	// 2. Export for analyst review (here: an in-memory buffer; on disk
	// this is `rulemine -json -o rules.json`).
	var ruleFile bytes.Buffer
	if err := serve.ExportRules(&ruleFile, clf); err != nil {
		return err
	}
	fmt.Printf("exported rule set: %d bytes of reviewable JSON\n", ruleFile.Len())

	// 3. Reload the (possibly analyst-edited) rules through the serving
	// layer's rule loader — the same path `longtaild -rules` and
	// /admin/reload use in production.
	deployed, err := serve.LoadRules(&ruleFile, classify.Reject)
	if err != nil {
		return err
	}

	// 4. Stream the next month's unknown downloads through the deployed
	// classifier, event by event, as a production deployment would.
	events := p.Store.Events()
	labeled, seen := 0, map[string]bool{}
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		ev := &events[idx]
		if p.Store.Label(ev.File) != dataset.LabelUnknown || seen[string(ev.File)] {
			continue
		}
		seen[string(ev.File)] = true
		vec, err := ex.Vector(ev)
		if err != nil {
			return err
		}
		inst := features.Instance{Vector: vec, File: ev.File}
		verdict, matched := deployed.ClassifyFile([]features.Instance{inst})
		if verdict == classify.VerdictMalicious || verdict == classify.VerdictBenign {
			labeled++
			if labeled <= 3 {
				fmt.Printf("  %s -> %s (rule: %s)\n", ev.File, verdict,
					deployed.Rules[matched[0]].String())
			}
		}
	}
	fmt.Printf("streamed %s: labeled %d of %d previously-unknown files on arrival\n",
		months[1], labeled, len(seen))
	return nil
}
