// Droppereffect reproduces the paper's Section V analysis of how
// infections cascade: what malicious processes of each behaviour type
// download (Table XII), and how quickly machines that run a dropper,
// adware or PUP go on to download other, more damaging malware
// (Figure 5).
//
// Run with:
//
//	go run ./examples/droppereffect
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := experiments.Run(synth.DefaultConfig(11, 0.01))
	if err != nil {
		return err
	}

	// What does each malware type download once it runs?
	rows, overall := p.Analyzer.MaliciousProcessBehavior()
	fmt.Println("malicious-process download behaviour (self-propagation of types):")
	for _, r := range append(rows, overall) {
		if r.Processes == 0 {
			continue
		}
		self := r.TypeShare[typeByName(r.Name)]
		fmt.Printf("  %-10s %4d processes, %4d malicious downloads, %5.1f%% of them the same type\n",
			r.Name, r.Processes, r.Malicious, 100*self)
	}

	// The dropper effect: time from first dropper/adware/PUP to the next
	// other-malware download.
	fmt.Println("\ntime from anchor infection to the next other-malware download:")
	for _, c := range p.Analyzer.AllTransitions() {
		if c.DeltaDays.Len() == 0 {
			continue
		}
		fmt.Printf("  after %-8s same day %5.1f%%, within 5 days %5.1f%% (%d of %d machines transitioned)\n",
			c.Source, 100*c.DeltaDays.At(1), 100*c.DeltaDays.At(5), c.Transitioned, c.Anchored)
	}
	fmt.Println("\npaper's conclusion: a machine that runs a dropper is almost certain to be hit again within days; adware/PUP machines follow; clean machines lag far behind")

	// Render the dropper curve as an ASCII CDF.
	drop := p.Analyzer.Transitions(analysis.SourceDropper)
	fmt.Println()
	return report.RenderCDF(os.Stdout, "dropper->other-malware delta (days)", drop.DeltaDays, 8,
		func(x float64) string { return fmt.Sprintf("%5.1fd", x) })
}

// typeByName maps a behaviour-type name back to its enum; the "overall"
// row falls back to undefined and simply reports that share.
func typeByName(name string) dataset.MalwareType {
	t, err := dataset.ParseMalwareType(name)
	if err != nil {
		return dataset.TypeUndefined
	}
	return t
}
